"""Dtype-compacted peer state: million-peer rings as columnar arrays.

One :class:`~repro.ring.node.PeerNode` per peer costs hundreds of bytes of
Python object graph before the first item is stored, which caps the
object-backed simulator around 10^5 peers.  :class:`CompactRing` keeps the
whole ring as a handful of NumPy columns instead — sorted ``uint64``
identifiers, ``int64`` load counts, and the compressed finger-scan matrix
in the exact :class:`~repro.ring.snapshot.RingSnapshot` layout — so
N=10^6–10^7 rings construct and run full routing and gossip rounds in
bounded memory (tens to a few hundred bytes per peer, reported by
:meth:`CompactRing.memory_report`).

The compact backend models the *stabilized* ring: pointers are exact by
construction (the state :meth:`RingNetwork.rebuild_overlay` produces), and
rounds are batch operations — :meth:`route_batch` advances thousands of
lookups in vectorized lockstep with the same per-hop arithmetic as
:func:`repro.ring.routing.route_probes_batch`, and :meth:`gossip_round`
runs one push-sum exchange for every peer at once.  Membership is
seed-identical to the object backend: :meth:`build` consumes the identifier
RNG draws in exactly the order :meth:`RingNetwork.create` consumes them, so
``RingNetwork.create(n, seed=s, compact=True)`` places peers on the same
ring positions as the object network built from the same seed.

Select it with ``RingNetwork.create(..., compact=True)``; the object
backend stays the default and is untouched.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from numpy.typing import NDArray

from repro.ring.hashing import OrderPreservingHash
from repro.ring.identifier import IdentifierSpace
from repro.ring.messages import MessageStats, MessageType

__all__ = ["CompactRing"]

#: Rows per block when building the compressed finger-scan matrix.  The
#: full ``block x bits`` finger slab is transient (a few MB), so the peak
#: build footprint stays far below one uncompressed ``n x bits`` matrix
#: (which alone would be 512 MB at N=10^6).
_SCAN_BLOCK = 65536

#: Default lookups per vectorized slab in :meth:`CompactRing.routing_round`.
_ROUTE_SLAB = 131072


class CompactRing:
    """A stabilized ring held entirely in structure-of-arrays columns.

    Columns (all ring-ordered, index ``i`` is the ``i``-th peer clockwise):

    * :attr:`ids` — sorted peer identifiers, ``uint64``;
    * :attr:`counts` — per-peer item counts, ``int64`` (the load column);
    * :attr:`scan` — the compressed finger-scan matrix, ``uint64`` of shape
      ``(n, W)`` with ``W ~ log2 n``: per peer, the distinct finger targets
      with duplicate runs collapsed to their highest column and short rows
      padded with the peer's own identifier (which fails every strict
      in-arc test), exactly the
      :meth:`~repro.ring.snapshot.RingSnapshot.finger_scan_tables` layout.

    Successors and predecessors are not stored: on the stabilized ring they
    are index rolls (``succ(i) = (i+1) % n``), which is also why no
    liveness mask exists — the compact backend has no notion of a departed
    peer.  Cost accounting goes through the same :class:`MessageStats`
    ledger as the object backend.
    """

    def __init__(
        self,
        space: IdentifierSpace,
        ids: NDArray[np.uint64],
        *,
        domain: tuple[float, float] = (0.0, 1.0),
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if ids.size < 1:
            raise ValueError("need at least one peer")
        self.space = space
        self.data_hash = OrderPreservingHash(space, domain[0], domain[1])
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.stats = MessageStats()
        self.ids: NDArray[np.uint64] = np.ascontiguousarray(ids, dtype=np.uint64)
        self.counts: NDArray[np.int64] = np.zeros(ids.size, dtype=np.int64)
        self.scan: NDArray[np.uint64] = self._build_scan(space, self.ids)
        # Push-sum state (created on first gossip round): estimating the
        # network-wide mean load needs one value and one weight column.
        self._gossip_value: Optional[NDArray[np.float64]] = None
        self._gossip_weight: Optional[NDArray[np.float64]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        n_peers: int,
        *,
        bits: int = 64,
        domain: tuple[float, float] = (0.0, 1.0),
        seed: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> "CompactRing":
        """Build a stabilized compact ring of ``n_peers`` random peers.

        Identifier draws replay :meth:`RingNetwork.create` exactly — the
        same ``needed``-sized batches against the same generator state,
        deduplicated with ``np.unique`` instead of a Python set (distinct
        counts are equal, so each iteration requests the same batch) —
        which makes the membership seed-identical to the object backend.
        """
        if n_peers < 1:
            raise ValueError(f"need at least one peer, got {n_peers}")
        if rng is None:
            rng = np.random.default_rng(seed)
        space = IdentifierSpace(bits)
        ids = np.empty(0, dtype=np.uint64)
        while ids.size < n_peers:
            needed = n_peers - ids.size
            draws = rng.integers(0, space.size, size=needed, dtype=np.uint64)
            ids = np.unique(np.concatenate((ids, draws)))
        return cls(space, ids, domain=domain, rng=rng)

    @staticmethod
    def _build_scan(
        space: IdentifierSpace, ids: NDArray[np.uint64]
    ) -> NDArray[np.uint64]:
        """The compressed finger-scan matrix, built blockwise.

        Per block of rows: compute the full ``block x bits`` finger slab
        (owner of ``id + 2^k`` via one ``searchsorted``), collapse
        duplicate runs to their highest column — every finger is valid on
        the stabilized ring, so the keep mask is just the run-boundary
        test — and stash the kept entries.  The final matrix pads each row
        to the global maximum width with the row's own identifier.  Peak
        transient memory is one block's finger slab, never ``n x bits``.
        """
        n = ids.size
        bits = space.bits
        mask = np.uint64(space.size - 1)
        powers = np.uint64(1) << np.arange(bits, dtype=np.uint64)
        blocks: list[tuple[NDArray[np.uint64], NDArray[np.int64]]] = []
        width = 1
        for lo in range(0, n, _SCAN_BLOCK):
            hi = min(lo + _SCAN_BLOCK, n)
            targets = (ids[lo:hi, None] + powers[None, :]) & mask
            indices = np.searchsorted(ids, targets, side="left")
            indices[indices == n] = 0
            fingers = ids[indices]
            keep = np.ones(fingers.shape, dtype=bool)
            if bits > 1:
                keep[:, :-1] = fingers[:, :-1] != fingers[:, 1:]
            widths = keep.sum(axis=1)
            width = max(width, int(widths.max()))
            blocks.append((fingers[keep], widths))
        scan = np.repeat(ids[:, None], width, axis=1)
        row = 0
        for kept, widths in blocks:
            starts = np.zeros(widths.size + 1, dtype=np.int64)
            np.cumsum(widths, out=starts[1:])
            rows = np.repeat(np.arange(widths.size, dtype=np.int64), widths)
            cols = np.arange(kept.size, dtype=np.int64) - starts[rows]
            scan[row + rows, cols] = kept
            row += widths.size
        return scan

    # ------------------------------------------------------------------
    # Basic views
    # ------------------------------------------------------------------
    @property
    def n_peers(self) -> int:
        """Number of peers."""
        return int(self.ids.size)

    @property
    def total_count(self) -> int:
        """Total items across all peers."""
        return int(self.counts.sum())

    def record(self, message_type: MessageType, count: int = 1, payload: float = 0.0) -> None:
        """Record simulated network traffic (same ledger as the object backend)."""
        self.stats.record(message_type, count, payload=payload)

    def memory_report(self) -> dict[str, float]:
        """Per-column resident bytes and the bytes/peer total.

        Covers every persistent column (identifiers, loads, the scan
        matrix, gossip state when materialized); transient build slabs are
        excluded because they are freed before the ring is usable.
        """
        columns = {
            "ids": float(self.ids.nbytes),
            "counts": float(self.counts.nbytes),
            "scan": float(self.scan.nbytes),
        }
        if self._gossip_value is not None:
            columns["gossip_value"] = float(self._gossip_value.nbytes)
        if self._gossip_weight is not None:
            columns["gossip_weight"] = float(self._gossip_weight.nbytes)
        total = sum(columns.values())  # repro-lint: disable=SUM001 (byte-count bookkeeping; order-insensitive)
        report = dict(columns)
        report["total_bytes"] = total
        report["bytes_per_peer"] = total / self.n_peers
        report["scan_width"] = float(self.scan.shape[1])
        return report

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def load_counts(self, values) -> None:
        """Place data values on their owners, keeping *counts* only.

        The compact backend stores the load column, not the items: one
        vectorized hash + ``searchsorted`` + ``bincount`` pass adds each
        value to its owner's count (the same owner
        :meth:`RingNetwork.load_data` resolves), and the values are
        discarded — memory stays O(n_peers) regardless of data volume.
        """
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            return
        keys = self.data_hash.map_values(arr)
        positions = np.searchsorted(self.ids, keys, side="left")
        positions[positions == self.ids.size] = 0
        self.counts += np.bincount(positions, minlength=self.ids.size).astype(np.int64)
        # New load invalidates any in-progress push-sum estimate.
        self._gossip_value = None
        self._gossip_weight = None

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route_batch(
        self,
        entries: NDArray[np.int64],
        keys: NDArray[np.uint64],
        *,
        traffic: Optional[NDArray[np.int64]] = None,
    ) -> tuple[NDArray[np.int64], NDArray[np.int64]]:
        """Route many lookups in vectorized lockstep; returns (owners, hops).

        ``entries`` are peer *indices*, ``keys`` ring positions; the result
        arrays give each lookup's owner index and hop count.  The per-hop
        arithmetic is the stabilized-ring core of
        :func:`repro.ring.routing.route_probes_batch`: entry shortcuts
        (self-key, live-predecessor half-open test), the highest-column
        in-arc scan over the compressed finger matrix with successor
        fallback, and one final delivery hop — minus the dead-pointer
        handling, which cannot arise here.  Hops are posted to the ledger
        in one bulk ``LOOKUP_HOP`` record.  When ``traffic`` (length
        ``n_peers``) is given, every hop's destination increments it —
        the per-peer message load the congestion metrics read.
        """
        count = int(keys.size)
        if count == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        ids = self.ids
        n = ids.size
        mask = np.uint64(self.space.mask)
        zero = np.uint64(0)
        scan = self.scan
        max_hops = 2 * n + self.space.bits

        cur = np.asarray(entries, dtype=np.int64).copy()
        keys_arr = np.asarray(keys, dtype=np.uint64)
        hops = np.zeros(count, dtype=np.int64)
        owner_idx = np.full(count, -1, dtype=np.int64)

        succ_of = lambda idx: (idx + 1) % n  # noqa: E731 - tiny index roll
        entry_ids = ids[cur]
        pred_idx = (cur - 1) % n
        preds_here = ids[pred_idx]

        # Entry shortcuts, exactly as in route_to_key: the entry itself, or
        # a node whose (always live) predecessor precedes the key.
        done = keys_arr == entry_ids
        owner_idx[done] = cur[done]
        dk = (keys_arr - preds_here) & mask
        shortcut = (
            ~done
            & (
                (preds_here == entry_ids)
                | ((dk > zero) & (dk <= (entry_ids - preds_here) & mask))
            )
        )
        owner_idx[shortcut] = cur[shortcut]
        done |= shortcut

        active = np.flatnonzero(~done)
        rounds = 0
        while active.size:
            rounds += 1
            if rounds > max_hops:
                raise RuntimeError(
                    f"{active.size} lookups exceeded {max_hops} hops on a "
                    "stabilized compact ring (corrupt scan matrix?)"
                )
            ci = cur[active]
            ci_ids = ids[ci]
            key_dist = (keys_arr[active] - ci_ids) & mask  # > 0 mid-route
            si = succ_of(ci)
            succ_ids = ids[si]
            terminal = key_dist <= (succ_ids - ci_ids) & mask
            finished = active[terminal]
            if finished.size:
                owner_idx[finished] = si[terminal]
                hops[finished] += 1  # the final delivery hop
                if traffic is not None:
                    np.add.at(traffic, si[terminal], 1)
            advancing = active[~terminal]
            if not advancing.size:
                break
            ca = cur[advancing]
            ca_ids = ids[ca]
            finger_dist = (scan[ca] - ca_ids[:, None]) & mask
            in_arc = (finger_dist > zero) & (
                finger_dist < ((keys_arr[advancing] - ca_ids) & mask)[:, None]
            )
            hit = in_arc.any(axis=1)
            first_rev = in_arc.shape[1] - 1 - np.argmax(in_arc[:, ::-1], axis=1)
            cand_idx = np.searchsorted(ids, scan[ca, first_rev]).astype(np.int64)
            # No finger inside the arc: fall to the successor, which always
            # qualifies mid-route on a stabilized ring.
            cand_idx = np.where(hit, cand_idx, succ_of(ca))
            hops[advancing] += 1
            if traffic is not None:
                np.add.at(traffic, cand_idx, 1)
            cur[advancing] = cand_idx
            active = advancing

        total_hops = int(hops.sum())
        if total_hops:
            self.record(MessageType.LOOKUP_HOP, count=total_hops)
        return owner_idx, hops

    def routing_round(
        self,
        *,
        lookups: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        slab: int = _ROUTE_SLAB,
    ) -> dict[str, float]:
        """One full routing round: uniform lookups from uniform entry peers.

        Draws ``lookups`` (default: one per peer) uniform keys and entry
        peers, routes them through :meth:`route_batch` in slabs of ``slab``
        (bounding the working set), and returns the round's summary —
        total/mean/max hops and the hottest peer's message count, the
        batch-side analogue of the event engine's queue-depth statistic.
        """
        if rng is None:
            rng = self.rng
        n = self.n_peers
        total = n if lookups is None else int(lookups)
        if total < 0:
            raise ValueError(f"lookups must be >= 0, got {total}")
        traffic = np.zeros(n, dtype=np.int64)
        hop_total = 0
        hop_max = 0
        remaining = total
        while remaining > 0:
            batch = min(remaining, slab)
            entries = rng.integers(0, n, size=batch).astype(np.int64)
            keys = rng.integers(0, self.space.size, size=batch, dtype=np.uint64)
            _owners, hops = self.route_batch(entries, keys, traffic=traffic)
            hop_total += int(hops.sum())
            if batch:
                hop_max = max(hop_max, int(hops.max()))
            remaining -= batch
        hot = int(traffic.argmax()) if n else -1
        return {
            "lookups": float(total),
            "total_hops": float(hop_total),
            "mean_hops": hop_total / total if total else 0.0,
            "max_hops": float(hop_max),
            "hot_peer_messages": float(traffic[hot]) if n else 0.0,
            "hot_peer_index": float(hot),
        }

    # ------------------------------------------------------------------
    # Gossip
    # ------------------------------------------------------------------
    def gossip_round(self, *, rng: Optional[np.random.Generator] = None) -> dict[str, float]:
        """One synchronous push-sum round over the load column.

        Every peer halves its (value, weight) pair and pushes one half to
        a random finger from its scan row (falling back to the successor
        when the draw lands on a self-pad) — the classic push-sum gossip
        for the network-wide mean load, with one ``GOSSIP_PUSH`` per peer
        recorded in the ledger.  Returns the round's convergence summary:
        the maximum relative error of the per-peer mean-load estimates
        against the true mean.
        """
        if rng is None:
            rng = self.rng
        n = self.n_peers
        if self._gossip_value is None or self._gossip_weight is None:
            self._gossip_value = self.counts.astype(np.float64)
            self._gossip_weight = np.ones(n, dtype=np.float64)
        value = self._gossip_value
        weight = self._gossip_weight
        cols = rng.integers(0, self.scan.shape[1], size=n)
        partner_ids = self.scan[np.arange(n), cols]
        partner = np.searchsorted(self.ids, partner_ids).astype(np.int64)
        # Self-pad (or the degenerate single-peer ring): push clockwise.
        self_hit = partner_ids == self.ids
        partner[self_hit] = (np.flatnonzero(self_hit) + 1) % n
        half_v = value * 0.5
        half_w = weight * 0.5
        new_v = half_v.copy()
        new_w = half_w.copy()
        np.add.at(new_v, partner, half_v)
        np.add.at(new_w, partner, half_w)
        self._gossip_value = new_v
        self._gossip_weight = new_w
        self.record(MessageType.GOSSIP_PUSH, count=n, payload=2.0 * n)
        true_mean = self.counts.mean() if n else 0.0
        estimates = new_v / new_w
        if true_mean > 0:
            max_rel_error = float(np.abs(estimates - true_mean).max() / true_mean)
        else:
            max_rel_error = float(np.abs(estimates).max()) if n else 0.0
        return {
            "pushes": float(n),
            "true_mean_load": float(true_mean),
            "max_rel_error": max_rel_error,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompactRing(peers={self.n_peers}, items={self.total_count}, "
            f"bits={self.space.bits}, scan_width={self.scan.shape[1]})"
        )
