"""Dtype-compacted peer state: million-peer rings as columnar arrays.

One :class:`~repro.ring.node.PeerNode` per peer costs hundreds of bytes of
Python object graph before the first item is stored, which caps the
object-backed simulator around 10^5 peers.  :class:`CompactRing` keeps the
whole ring as a handful of NumPy columns instead — sorted ``uint64``
identifiers, ``int64`` load counts, and the compressed finger-scan matrix
in the exact :class:`~repro.ring.snapshot.RingSnapshot` layout — so
N=10^6–10^7 rings construct and run full routing and gossip rounds in
bounded memory (tens to a few hundred bytes per peer, reported by
:meth:`CompactRing.memory_report`).

The compact backend models the *stabilized* ring: pointers are exact by
construction (the state :meth:`RingNetwork.rebuild_overlay` produces), and
rounds are batch operations — :meth:`route_batch` advances thousands of
lookups in vectorized lockstep with the same per-hop arithmetic as
:func:`repro.ring.routing.route_probes_batch`, and :meth:`gossip_round`
runs one push-sum exchange for every peer at once.  Membership is
seed-identical to the object backend: :meth:`build` consumes the identifier
RNG draws in exactly the order :meth:`RingNetwork.create` consumes them, so
``RingNetwork.create(n, seed=s, compact=True)`` places peers on the same
ring positions as the object network built from the same seed.

Select it with ``RingNetwork.create(..., compact=True)``; the object
backend stays the default and is untouched.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.ring.hashing import OrderPreservingHash
from repro.ring.identifier import IdentifierSpace
from repro.ring.messages import MessageStats, MessageType

if TYPE_CHECKING:  # summary objects are built by repro.core.synopsis
    from repro.core.synopsis import PeerSummary

__all__ = ["CompactRing"]

#: Rows per block when building the compressed finger-scan matrix.  The
#: full ``block x bits`` finger slab is transient (a few MB), so the peak
#: build footprint stays far below one uncompressed ``n x bits`` matrix
#: (which alone would be 512 MB at N=10^6).
_SCAN_BLOCK = 65536

#: Values per block when binning a bulk load into the synopsis plane; the
#: per-block temporaries (keys, owner positions, bucket indices) stay a few
#: hundred KB regardless of the loaded data volume.
_LOAD_BLOCK = 65536

#: Default lookups per vectorized slab in :meth:`CompactRing.routing_round`.
_ROUTE_SLAB = 131072


class CompactRing:
    """A stabilized ring held entirely in structure-of-arrays columns.

    Columns (all ring-ordered, index ``i`` is the ``i``-th peer clockwise):

    * :attr:`ids` — sorted peer identifiers, ``uint64``;
    * :attr:`counts` — per-peer item counts, ``int64`` (the load column);
    * :attr:`scan` — the compressed finger-scan matrix, ``uint64`` of shape
      ``(n, W)`` with ``W ~ log2 n``: per peer, the distinct finger targets
      with duplicate runs collapsed to their highest column and short rows
      padded with the peer's own identifier (which fails every strict
      in-arc test), exactly the
      :meth:`~repro.ring.snapshot.RingSnapshot.finger_scan_tables` layout.

    Successors and predecessors are not stored: on the stabilized ring they
    are index rolls (``succ(i) = (i+1) % n``), which is also why no
    liveness mask exists — the compact backend has no notion of a departed
    peer.  Cost accounting goes through the same :class:`MessageStats`
    ledger as the object backend.
    """

    def __init__(
        self,
        space: IdentifierSpace,
        ids: NDArray[np.uint64],
        *,
        domain: tuple[float, float] = (0.0, 1.0),
        rng: Optional[np.random.Generator] = None,
        synopsis_buckets: int = 8,
    ) -> None:
        if ids.size < 1:
            raise ValueError("need at least one peer")
        if synopsis_buckets < 1:
            raise ValueError(f"synopsis_buckets must be >= 1, got {synopsis_buckets}")
        self.space = space
        self.data_hash = OrderPreservingHash(space, domain[0], domain[1])
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.stats = MessageStats()
        self.ids: NDArray[np.uint64] = np.ascontiguousarray(ids, dtype=np.uint64)
        self.counts: NDArray[np.int64] = np.zeros(ids.size, dtype=np.int64)
        self.scan: NDArray[np.uint64] = self._build_scan(space, self.ids)
        #: The compact backend never carries a fault plane: it models the
        #: stabilized, loss-free ring.  The attribute exists so estimators
        #: can read ``backend.faults`` uniformly across both backends.
        self.faults: None = None
        #: Membership is immutable, so the topology token never moves; the
        #: data token advances on every :meth:`load_counts`, which is what
        #: the serving layer's version-keyed cache invalidates on.
        self.topology_version: int = 0
        self.data_version: int = 0
        # Columnar synopsis plane: the value-range bounds of every peer's
        # primary ownership segment (and the single wrap-around segment at
        # the ring origin), plus the per-peer bucket-count matrix filled by
        # load_counts.  Bounds are geometry (eager, 16 B/peer); the count
        # matrix is data (lazy, 8*B B/peer once anything loads).
        self.synopsis_buckets = int(synopsis_buckets)
        self.seg_low: NDArray[np.float64]
        self.seg_high: NDArray[np.float64]
        self._wrap_bounds: Optional[tuple[float, float]]
        self._build_segment_bounds()
        self.hist: Optional[NDArray[np.int64]] = None
        self._wrap_hist: Optional[NDArray[np.int64]] = None
        self._summary_cache: dict[int, "PeerSummary"] = {}
        # Push-sum state (created on first gossip round): estimating the
        # network-wide mean load needs one value and one weight column.
        self._gossip_value: Optional[NDArray[np.float64]] = None
        self._gossip_weight: Optional[NDArray[np.float64]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        n_peers: int,
        *,
        bits: int = 64,
        domain: tuple[float, float] = (0.0, 1.0),
        seed: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        synopsis_buckets: int = 8,
    ) -> "CompactRing":
        """Build a stabilized compact ring of ``n_peers`` random peers.

        Identifier draws replay :meth:`RingNetwork.create` exactly — the
        same ``needed``-sized batches against the same generator state,
        deduplicated with ``np.unique`` instead of a Python set (distinct
        counts are equal, so each iteration requests the same batch) —
        which makes the membership seed-identical to the object backend.
        """
        if n_peers < 1:
            raise ValueError(f"need at least one peer, got {n_peers}")
        if rng is None:
            rng = np.random.default_rng(seed)
        space = IdentifierSpace(bits)
        ids = np.empty(0, dtype=np.uint64)
        while ids.size < n_peers:
            needed = n_peers - ids.size
            draws = rng.integers(0, space.size, size=needed, dtype=np.uint64)
            ids = np.unique(np.concatenate((ids, draws)))
        return cls(space, ids, domain=domain, rng=rng, synopsis_buckets=synopsis_buckets)

    @staticmethod
    def _build_scan(
        space: IdentifierSpace, ids: NDArray[np.uint64]
    ) -> NDArray[np.uint64]:
        """The compressed finger-scan matrix, built blockwise.

        Per block of rows: compute the full ``block x bits`` finger slab
        (owner of ``id + 2^k`` via one ``searchsorted``), collapse
        duplicate runs to their highest column — every finger is valid on
        the stabilized ring, so the keep mask is just the run-boundary
        test — and stash the kept entries.  The final matrix pads each row
        to the global maximum width with the row's own identifier.  Peak
        transient memory is one block's finger slab, never ``n x bits``.
        """
        n = ids.size
        bits = space.bits
        mask = np.uint64(space.size - 1)
        powers = np.uint64(1) << np.arange(bits, dtype=np.uint64)
        blocks: list[tuple[NDArray[np.uint64], NDArray[np.int64]]] = []
        width = 1
        for lo in range(0, n, _SCAN_BLOCK):
            hi = min(lo + _SCAN_BLOCK, n)
            targets = (ids[lo:hi, None] + powers[None, :]) & mask
            indices = np.searchsorted(ids, targets, side="left")
            indices[indices == n] = 0
            fingers = ids[indices]
            keep = np.ones(fingers.shape, dtype=bool)
            if bits > 1:
                keep[:, :-1] = fingers[:, :-1] != fingers[:, 1:]
            widths = keep.sum(axis=1)
            width = max(width, int(widths.max()))
            blocks.append((fingers[keep], widths))
        scan = np.repeat(ids[:, None], width, axis=1)
        row = 0
        for kept, widths in blocks:
            starts = np.zeros(widths.size + 1, dtype=np.int64)
            np.cumsum(widths, out=starts[1:])
            rows = np.repeat(np.arange(widths.size, dtype=np.int64), widths)
            cols = np.arange(kept.size, dtype=np.int64) - starts[rows]
            scan[row + rows, cols] = kept
            row += widths.size
        return scan

    def _build_segment_bounds(self) -> None:
        """Per-peer value-range bounds of the synopsis plane.

        Replicates :func:`repro.core.synopsis._build_summary`'s geometry
        exactly, vectorized: peer ``i``'s arc ``(ids[i-1], ids[i]]`` maps to
        the value range ``[to_value(ids[i-1]+1), to_value(ids[i]+1))`` by
        monotonicity of the hash, the top identifier's successor wraps to
        the domain high, peer 0 owns ``[low, to_value(ids[0]+1))`` plus the
        wrap-around high-end segment, and float-degenerate ranges widen by
        one ulp (the object path's ``nonempty``).  ``uint64 -> float64``
        conversion followed by division by the exact power of two ``2^m``
        rounds identically to Python's correctly rounded int/int division,
        so every bound is bit-identical to the scalar ``to_value``.
        """
        low = self.data_hash.low
        high = self.data_hash.high
        n = self.ids.size
        if n == 1:
            # A single peer owns the whole ring, hence the whole domain.
            self.seg_low = np.array([low], dtype=np.float64)
            self.seg_high = np.array([high], dtype=np.float64)
            self._wrap_bounds = None
            return
        after = self.ids + np.uint64(1)  # wraps to 0 only at the top identifier
        u = after.astype(np.float64) / float(self.space.size)
        edges = low + u * (high - low)
        seg_high = edges.copy()
        top_wraps = bool(self.ids[-1] == np.uint64(self.space.mask))
        if top_wraps:
            seg_high[-1] = high
        seg_low = np.empty(n, dtype=np.float64)
        seg_low[0] = low
        seg_low[1:] = edges[:-1]
        degenerate = ~(seg_low < seg_high)
        if degenerate.any():
            seg_high[degenerate] = np.nextafter(seg_low[degenerate], np.inf)
        self.seg_low = seg_low
        self.seg_high = seg_high
        if top_wraps:
            # first_start == 0: peer 0's ownership is [0, ids[0]] only.
            self._wrap_bounds = None
        else:
            w_low = float(edges[-1])
            w_high = high
            if not w_low < w_high:
                w_high = float(np.nextafter(w_low, np.inf))
            self._wrap_bounds = (w_low, w_high)

    # ------------------------------------------------------------------
    # Basic views
    # ------------------------------------------------------------------
    @property
    def n_peers(self) -> int:
        """Number of peers."""
        return int(self.ids.size)

    @property
    def domain(self) -> tuple[float, float]:
        """The data value domain mapped onto the ring."""
        return (self.data_hash.low, self.data_hash.high)

    @property
    def version_token(self) -> tuple[int, int]:
        """``(topology_version, data_version)`` — the serving-layer cache key."""
        return (self.topology_version, self.data_version)

    def segment_length(self, index: int) -> int:
        """Ownership arc length ``ℓ_p`` of the peer at ``index``.

        Masked subtraction makes ``ids[0] - ids[-1]`` the correct clockwise
        distance for the origin-wrapping peer; the single-peer ring owns
        all ``2^m`` identifiers.
        """
        if self.ids.size == 1:
            return int(self.space.size)
        return (int(self.ids[index]) - int(self.ids[index - 1])) & self.space.mask

    def synopsis_plane(self) -> tuple[NDArray[np.int64], NDArray[np.int64]]:
        """The bucket-count matrix and the wrap segment's row, allocated lazily.

        ``hist[i]`` holds peer ``i``'s primary-segment bucket counts over
        ``[seg_low[i], seg_high[i])``; the separate wrap row holds peer 0's
        high-end segment (at most one peer wraps the ring origin).
        """
        if self.hist is None:
            self.hist = np.zeros((self.ids.size, self.synopsis_buckets), dtype=np.int64)
        if self._wrap_hist is None:
            self._wrap_hist = np.zeros(self.synopsis_buckets, dtype=np.int64)
        return self.hist, self._wrap_hist

    @property
    def wrap_bounds(self) -> Optional[tuple[float, float]]:
        """Value bounds of peer 0's high-end wrap segment (None if it has none)."""
        return self._wrap_bounds

    def cached_summary(self, index: int) -> Optional["PeerSummary"]:
        """The memoized probe reply for peer ``index`` (invalidated per load)."""
        return self._summary_cache.get(index)

    def cache_summary(self, index: int, summary: "PeerSummary") -> None:
        """Memoize a built probe reply until the next :meth:`load_counts`."""
        self._summary_cache[index] = summary

    @property
    def total_count(self) -> int:
        """Total items across all peers."""
        return int(self.counts.sum())

    def record(self, message_type: MessageType, count: int = 1, payload: float = 0.0) -> None:
        """Record simulated network traffic (same ledger as the object backend)."""
        self.stats.record(message_type, count, payload=payload)

    def memory_report(self) -> dict[str, float]:
        """Per-column resident bytes and the bytes/peer total.

        Covers every persistent column (identifiers, loads, the scan
        matrix, gossip state when materialized); transient build slabs are
        excluded because they are freed before the ring is usable.
        """
        columns = {
            "ids": float(self.ids.nbytes),
            "counts": float(self.counts.nbytes),
            "scan": float(self.scan.nbytes),
            "synopsis_seg_low": float(self.seg_low.nbytes),
            "synopsis_seg_high": float(self.seg_high.nbytes),
        }
        if self.hist is not None:
            columns["synopsis_hist"] = float(self.hist.nbytes)
        if self._wrap_hist is not None:
            columns["synopsis_wrap_hist"] = float(self._wrap_hist.nbytes)
        if self._gossip_value is not None:
            columns["gossip_value"] = float(self._gossip_value.nbytes)
        if self._gossip_weight is not None:
            columns["gossip_weight"] = float(self._gossip_weight.nbytes)
        total = sum(columns.values())  # repro-lint: disable=SUM001 (byte-count bookkeeping; order-insensitive)
        synopsis_bytes = (
            columns["synopsis_seg_low"]
            + columns["synopsis_seg_high"]
            + columns.get("synopsis_hist", 0.0)
            + columns.get("synopsis_wrap_hist", 0.0)
        )
        report = dict(columns)
        report["total_bytes"] = total
        report["bytes_per_peer"] = total / self.n_peers
        report["scan_width"] = float(self.scan.shape[1])
        report["synopsis_bytes"] = synopsis_bytes
        report["synopsis_buckets"] = float(self.synopsis_buckets)
        return report

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def load_counts(self, values: ArrayLike) -> None:
        """Place data values on their owners: counts plus bucket synopses.

        The compact backend stores the load column and the synopsis plane,
        not the items: blockwise (so the transient keys/positions/buckets
        never exceed one ``_LOAD_BLOCK`` slab regardless of data volume),
        each value is hashed, ``searchsorted`` to its owner (the same owner
        :meth:`RingNetwork.load_data` resolves), counted, and binned into
        the owner's histogram row with the exact
        :meth:`~repro.ring.storage.LocalStore.histogram_range` bucket
        arithmetic — including the object path's straggler repair for
        values that float rounding pushes outside every segment.  The
        values themselves are discarded; memory stays O(n_peers).

        Raises ``ValueError`` up front — the object backend's storage
        taxonomy — when the values cannot be coerced to floats or contain
        non-finite entries.
        """
        arr = np.asarray(values, dtype=float).ravel()
        if arr.size == 0:
            return
        if not np.isfinite(arr).all():
            raise ValueError(
                "could not place data values: non-finite entries (nan/inf) "
                "have no position on the ring"
            )
        hist, wrap_hist = self.synopsis_plane()
        hist_flat = hist.reshape(-1)
        n = self.ids.size
        buckets = self.synopsis_buckets
        for block_lo in range(0, arr.size, _LOAD_BLOCK):
            chunk = arr[block_lo : block_lo + _LOAD_BLOCK]
            keys = self.data_hash.map_values(chunk)
            positions = np.searchsorted(self.ids, keys, side="left")
            positions[positions == n] = 0
            self.counts += np.bincount(positions, minlength=n).astype(np.int64)
            lows = self.seg_low[positions]
            highs = self.seg_high[positions]
            in_primary = (chunk >= lows) & (chunk < highs)
            prim = np.flatnonzero(in_primary)
            if prim.size:
                # The quotient is non-negative inside the range, so int
                # truncation equals floor; only the top clamp remains —
                # byte-for-byte the histogram_range expression.
                bucket = (
                    (chunk[prim] - lows[prim]) / (highs[prim] - lows[prim]) * buckets
                ).astype(np.int64)
                np.minimum(bucket, buckets - 1, out=bucket)
                np.add.at(hist_flat, positions[prim] * buckets + bucket, 1)
            out = ~in_primary
            if self._wrap_bounds is not None and out.any():
                w_low, w_high = self._wrap_bounds
                wrap = out & (positions == 0) & (chunk >= w_low) & (chunk < w_high)
                wrap_i = np.flatnonzero(wrap)
                if wrap_i.size:
                    bucket = (
                        (chunk[wrap_i] - w_low) / (w_high - w_low) * buckets
                    ).astype(np.int64)
                    np.minimum(bucket, buckets - 1, out=bucket)
                    np.add.at(wrap_hist, bucket, 1)
                    out &= ~wrap
            for stray in np.flatnonzero(out):
                self._bin_straggler(float(chunk[stray]), int(positions[stray]), hist, wrap_hist)
        self.data_version += 1
        self._summary_cache.clear()
        # New load invalidates any in-progress push-sum estimate.
        self._gossip_value = None
        self._gossip_weight = None

    def _bin_straggler(
        self,
        value: float,
        owner: int,
        hist: NDArray[np.int64],
        wrap_hist: NDArray[np.int64],
    ) -> None:
        """Fold one float-edge straggler into the nearest segment's edge bucket.

        Mirrors :func:`repro.core.synopsis._repair_segments` exactly:
        segments in the object backend's order (wrap segment first for the
        origin peer), nearest boundary wins with first-wins ties, and the
        value lands in bucket 0 below the segment or the top bucket above.
        """
        segments: list[tuple[float, float, NDArray[np.int64]]] = []
        if owner == 0 and self._wrap_bounds is not None:
            w_low, w_high = self._wrap_bounds
            segments.append((w_low, w_high, wrap_hist))
        segments.append(
            (float(self.seg_low[owner]), float(self.seg_high[owner]), hist[owner])
        )
        distances = [
            min(abs(value - seg_low), abs(value - seg_high))
            for seg_low, seg_high, _ in segments
        ]
        index = int(np.argmin(distances))
        seg_low, _seg_high, row = segments[index]
        bucket = 0 if value < seg_low else self.synopsis_buckets - 1
        row[bucket] += 1

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route_batch(
        self,
        entries: NDArray[np.int64],
        keys: NDArray[np.uint64],
        *,
        traffic: Optional[NDArray[np.int64]] = None,
    ) -> tuple[NDArray[np.int64], NDArray[np.int64]]:
        """Route many lookups in vectorized lockstep; returns (owners, hops).

        ``entries`` are peer *indices*, ``keys`` ring positions; the result
        arrays give each lookup's owner index and hop count.  The per-hop
        arithmetic is the stabilized-ring core of
        :func:`repro.ring.routing.route_probes_batch`: entry shortcuts
        (self-key, live-predecessor half-open test), the highest-column
        in-arc scan over the compressed finger matrix with successor
        fallback, and one final delivery hop — minus the dead-pointer
        handling, which cannot arise here.  Hops are posted to the ledger
        in one bulk ``LOOKUP_HOP`` record.  When ``traffic`` (length
        ``n_peers``) is given, every hop's destination increments it —
        the per-peer message load the congestion metrics read.
        """
        count = int(keys.size)
        if count == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        ids = self.ids
        n = ids.size
        mask = np.uint64(self.space.mask)
        zero = np.uint64(0)
        scan = self.scan
        max_hops = 2 * n + self.space.bits

        cur = np.asarray(entries, dtype=np.int64).copy()
        keys_arr = np.asarray(keys, dtype=np.uint64)
        hops = np.zeros(count, dtype=np.int64)
        owner_idx = np.full(count, -1, dtype=np.int64)

        succ_of = lambda idx: (idx + 1) % n  # noqa: E731 - tiny index roll
        entry_ids = ids[cur]
        pred_idx = (cur - 1) % n
        preds_here = ids[pred_idx]

        # Entry shortcuts, exactly as in route_to_key: the entry itself, or
        # a node whose (always live) predecessor precedes the key.
        done = keys_arr == entry_ids
        owner_idx[done] = cur[done]
        dk = (keys_arr - preds_here) & mask
        shortcut = (
            ~done
            & (
                (preds_here == entry_ids)
                | ((dk > zero) & (dk <= (entry_ids - preds_here) & mask))
            )
        )
        owner_idx[shortcut] = cur[shortcut]
        done |= shortcut

        active = np.flatnonzero(~done)
        rounds = 0
        while active.size:
            rounds += 1
            if rounds > max_hops:
                raise RuntimeError(
                    f"{active.size} lookups exceeded {max_hops} hops on a "
                    "stabilized compact ring (corrupt scan matrix?)"
                )
            ci = cur[active]
            ci_ids = ids[ci]
            key_dist = (keys_arr[active] - ci_ids) & mask  # > 0 mid-route
            si = succ_of(ci)
            succ_ids = ids[si]
            terminal = key_dist <= (succ_ids - ci_ids) & mask
            finished = active[terminal]
            if finished.size:
                owner_idx[finished] = si[terminal]
                hops[finished] += 1  # the final delivery hop
                if traffic is not None:
                    np.add.at(traffic, si[terminal], 1)
            advancing = active[~terminal]
            if not advancing.size:
                break
            ca = cur[advancing]
            ca_ids = ids[ca]
            finger_dist = (scan[ca] - ca_ids[:, None]) & mask
            in_arc = (finger_dist > zero) & (
                finger_dist < ((keys_arr[advancing] - ca_ids) & mask)[:, None]
            )
            hit = in_arc.any(axis=1)
            first_rev = in_arc.shape[1] - 1 - np.argmax(in_arc[:, ::-1], axis=1)
            cand_idx = np.searchsorted(ids, scan[ca, first_rev]).astype(np.int64)
            # No finger inside the arc: fall to the successor, which always
            # qualifies mid-route on a stabilized ring.
            cand_idx = np.where(hit, cand_idx, succ_of(ca))
            hops[advancing] += 1
            if traffic is not None:
                np.add.at(traffic, cand_idx, 1)
            cur[advancing] = cand_idx
            active = advancing

        total_hops = int(hops.sum())
        if total_hops:
            self.record(MessageType.LOOKUP_HOP, count=total_hops)
        return owner_idx, hops

    def routing_round(
        self,
        *,
        lookups: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        slab: int = _ROUTE_SLAB,
    ) -> dict[str, float]:
        """One full routing round: uniform lookups from uniform entry peers.

        Draws ``lookups`` (default: one per peer) uniform keys and entry
        peers, routes them through :meth:`route_batch` in slabs of ``slab``
        (bounding the working set), and returns the round's summary —
        total/mean/max hops and the hottest peer's message count, the
        batch-side analogue of the event engine's queue-depth statistic.
        """
        if rng is None:
            rng = self.rng
        n = self.n_peers
        total = n if lookups is None else int(lookups)
        if total < 0:
            raise ValueError(f"lookups must be >= 0, got {total}")
        traffic = np.zeros(n, dtype=np.int64)
        hop_total = 0
        hop_max = 0
        remaining = total
        while remaining > 0:
            batch = min(remaining, slab)
            entries = rng.integers(0, n, size=batch).astype(np.int64)
            keys = rng.integers(0, self.space.size, size=batch, dtype=np.uint64)
            _owners, hops = self.route_batch(entries, keys, traffic=traffic)
            hop_total += int(hops.sum())
            if batch:
                hop_max = max(hop_max, int(hops.max()))
            remaining -= batch
        hot = int(traffic.argmax()) if n else -1
        return {
            "lookups": float(total),
            "total_hops": float(hop_total),
            "mean_hops": hop_total / total if total else 0.0,
            "max_hops": float(hop_max),
            "hot_peer_messages": float(traffic[hot]) if n else 0.0,
            "hot_peer_index": float(hot),
        }

    # ------------------------------------------------------------------
    # Gossip
    # ------------------------------------------------------------------
    def gossip_round(self, *, rng: Optional[np.random.Generator] = None) -> dict[str, float]:
        """One synchronous push-sum round over the load column.

        Every peer halves its (value, weight) pair and pushes one half to
        a random finger from its scan row (falling back to the successor
        when the draw lands on a self-pad) — the classic push-sum gossip
        for the network-wide mean load, with one ``GOSSIP_PUSH`` per peer
        recorded in the ledger.  Returns the round's convergence summary:
        the maximum relative error of the per-peer mean-load estimates
        against the true mean.
        """
        if rng is None:
            rng = self.rng
        n = self.n_peers
        if self._gossip_value is None or self._gossip_weight is None:
            self._gossip_value = self.counts.astype(np.float64)
            self._gossip_weight = np.ones(n, dtype=np.float64)
        value = self._gossip_value
        weight = self._gossip_weight
        cols = rng.integers(0, self.scan.shape[1], size=n)
        partner_ids = self.scan[np.arange(n), cols]
        partner = np.searchsorted(self.ids, partner_ids).astype(np.int64)
        # Self-pad (or the degenerate single-peer ring): push clockwise.
        self_hit = partner_ids == self.ids
        partner[self_hit] = (np.flatnonzero(self_hit) + 1) % n
        half_v = value * 0.5
        half_w = weight * 0.5
        new_v = half_v.copy()
        new_w = half_w.copy()
        np.add.at(new_v, partner, half_v)
        np.add.at(new_w, partner, half_w)
        self._gossip_value = new_v
        self._gossip_weight = new_w
        self.record(MessageType.GOSSIP_PUSH, count=n, payload=2.0 * n)
        true_mean = self.counts.mean() if n else 0.0
        estimates = new_v / new_w
        if true_mean > 0:
            max_rel_error = float(np.abs(estimates - true_mean).max() / true_mean)
        else:
            max_rel_error = float(np.abs(estimates).max()) if n else 0.0
        return {
            "pushes": float(n),
            "true_mean_load": float(true_mean),
            "max_rel_error": max_rel_error,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompactRing(peers={self.n_peers}, items={self.total_count}, "
            f"bits={self.space.bits}, scan_width={self.scan.shape[1]})"
        )
