"""Workload builders: datasets, update streams, and range-query sets.

Experiments never hand-roll data; they describe a workload here and get a
seeded, reproducible object back.  The update stream models the *dynamic
data* half of the paper's "dynamic networks" claim (the peer-churn half
lives in :mod:`repro.ring.churn`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Literal, NamedTuple, Optional

import numpy as np

from repro.data.distributions import Distribution, make_distribution

__all__ = ["Dataset", "build_dataset", "UpdateOp", "UpdateStream", "RangeQuery", "RangeQueryWorkload"]


@dataclass(frozen=True)
class Dataset:
    """A generated dataset together with its generating truth."""

    values: np.ndarray
    distribution: Distribution
    seed: int

    @property
    def size(self) -> int:
        """Number of items."""
        return int(self.values.size)

    def empirical_cdf_at(self, x: np.ndarray | float) -> np.ndarray:
        """Empirical CDF of the dataset (the finite-sample ground truth).

        Estimators are compared against *this*, not the analytic CDF: the
        network stores these particular items, so a perfect estimator
        reproduces the empirical distribution exactly.
        """
        sorted_values = np.sort(self.values)
        ranks = np.searchsorted(sorted_values, np.asarray(x, dtype=float), side="right")
        return ranks / max(self.size, 1)


def build_dataset(
    distribution: Distribution | str,
    n: int,
    seed: int = 0,
    **dist_params,
) -> Dataset:
    """Generate ``n`` iid values from a distribution (by object or name)."""
    if n < 0:
        raise ValueError(f"dataset size must be >= 0, got {n}")
    if isinstance(distribution, str):
        distribution = make_distribution(distribution, **dist_params)
    elif dist_params:
        raise ValueError("dist_params only apply when distribution is given by name")
    rng = np.random.default_rng(seed)
    values = distribution.sample(n, rng)
    return Dataset(values=values, distribution=distribution, seed=seed)


class UpdateOp(NamedTuple):
    """One data update: insert a fresh value or delete an existing one.

    A named tuple rather than a dataclass: streams yield hundreds of
    thousands of these per drift round, and tuple construction skips the
    frozen-dataclass ``__setattr__`` round-trip.
    """

    kind: Literal["insert", "delete"]
    value: float


@dataclass
class UpdateStream:
    """A stream of inserts/deletes that drifts the stored dataset.

    Inserts draw from ``insert_distribution`` (defaults to the dataset's
    own generator — stationary updates; pass a different one to model
    distribution drift).  Deletes remove a uniformly chosen live item.
    """

    dataset: Dataset
    insert_fraction: float = 0.5
    insert_distribution: Optional[Distribution] = None
    seed: int = 0
    _live: list[float] = field(init=False, default_factory=list)
    _rng: np.random.Generator = field(init=False, repr=False, default=None)

    def __post_init__(self) -> None:
        if not 0.0 <= self.insert_fraction <= 1.0:
            raise ValueError(f"insert_fraction must be in [0, 1], got {self.insert_fraction}")
        self._live = [float(v) for v in self.dataset.values]
        self._rng = np.random.default_rng(self.seed)
        if self.insert_distribution is None:
            self.insert_distribution = self.dataset.distribution

    @property
    def live_values(self) -> np.ndarray:
        """The dataset as updated so far."""
        return np.asarray(self._live, dtype=float)

    def ops(self, count: int) -> Iterator[UpdateOp]:
        """Yield ``count`` update operations, mutating the live set."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        # Hot generator: RNG methods and the live list are hoisted (the
        # list is never rebound, so the local alias stays valid), while
        # ``insert_distribution`` is read per op — callers may swap it
        # between pulls to model drift.
        rng = self._rng
        random = rng.random
        integers = rng.integers
        live = self._live
        insert_fraction = self.insert_fraction
        for _ in range(count):
            if random() < insert_fraction or not live:
                value = float(self.insert_distribution.sample(1, rng)[0])
                live.append(value)
                yield UpdateOp("insert", value)
            else:
                index = int(integers(0, len(live)))
                value = live.pop(index)
                yield UpdateOp("delete", value)


@dataclass(frozen=True)
class RangeQuery:
    """A half-open selectivity query ``[low, high)``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not self.low < self.high:
            raise ValueError(f"empty range query [{self.low}, {self.high})")

    @property
    def span(self) -> float:
        """Query width."""
        return self.high - self.low

    def true_selectivity(self, values: np.ndarray) -> float:
        """Fraction of ``values`` falling inside the range."""
        if values.size == 0:
            return 0.0
        inside = np.count_nonzero((values >= self.low) & (values < self.high))
        return inside / values.size


@dataclass(frozen=True)
class RangeQueryWorkload:
    """A reproducible batch of random range queries over a domain."""

    queries: tuple[RangeQuery, ...]

    @classmethod
    def random(
        cls,
        domain: tuple[float, float],
        count: int,
        span_fraction: float = 0.1,
        seed: int = 0,
    ) -> "RangeQueryWorkload":
        """``count`` queries of fixed width ``span_fraction * |domain|``
        with uniformly random left endpoints."""
        if count < 1:
            raise ValueError(f"need at least one query, got {count}")
        if not 0.0 < span_fraction <= 1.0:
            raise ValueError(f"span_fraction must be in (0, 1], got {span_fraction}")
        low, high = domain
        width = (high - low) * span_fraction
        rng = np.random.default_rng(seed)
        starts = rng.uniform(low, high - width, size=count)
        return cls(tuple(RangeQuery(float(s), float(s + width)) for s in starts))

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[RangeQuery]:
        return iter(self.queries)
