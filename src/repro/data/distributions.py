"""The distribution zoo: synthetic data generators with analytic truth.

"Distribution-free" is the paper's headline property, so the evaluation
needs data whose true CDF/PDF is known exactly and whose shapes span the
regimes that break distribution-bound methods: uniform, light-tailed
unimodal, heavy-tailed (Zipf-like), multimodal mixtures, and exponential
decay.  Every distribution here is truncated to a bounded :class:`Domain`
(the ring's order-preserving hash needs finite bounds) with its CDF
renormalised accordingly, so measured estimation errors are exact.

All sampling takes an explicit ``numpy.random.Generator``.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.data.domain import UNIT_DOMAIN, Domain

__all__ = [
    "DiscreteZipf",
    "Distribution",
    "UniformDistribution",
    "TruncatedNormal",
    "TruncatedExponential",
    "BoundedPareto",
    "MixtureDistribution",
    "bimodal_mixture",
    "make_distribution",
    "DISTRIBUTION_NAMES",
]

_erf = np.frompyfunc(math.erf, 1, 1)


def _phi(z: np.ndarray | float) -> np.ndarray:
    """Standard normal CDF, vectorised without a scipy dependency."""
    z = np.asarray(z, dtype=float)
    # frompyfunc yields an object array (or scalar for 0-d input); coerce.
    return 0.5 * (1.0 + np.asarray(_erf(z / math.sqrt(2.0)), dtype=float))


class Distribution(ABC):
    """A scalar distribution over a bounded domain with analytic truth."""

    @property
    @abstractmethod
    def name(self) -> str:
        """Short label used in experiment tables."""

    @property
    @abstractmethod
    def domain(self) -> Domain:
        """Support of the (truncated) distribution."""

    @abstractmethod
    def cdf(self, x: np.ndarray | float) -> np.ndarray:
        """True CDF, 0 at ``domain.low`` and 1 at ``domain.high``."""

    @abstractmethod
    def pdf(self, x: np.ndarray | float) -> np.ndarray:
        """True density (0 outside the domain)."""

    @abstractmethod
    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` iid values."""

    def quantile_grid(self, points: int) -> np.ndarray:
        """CDF values on an even grid — convenience for plotting/tests."""
        return self.cdf(self.domain.grid(points))

    def _rejection_sample(
        self,
        n: int,
        rng: np.random.Generator,
        draw,
        max_rounds: int = 1000,
    ) -> np.ndarray:
        """Sample by drawing from an untruncated base and keeping in-domain.

        ``draw(k, rng)`` produces ``k`` base draws.  Raises if acceptance is
        pathologically low, which indicates a misconfigured truncation.
        """
        if n <= 0:
            return np.empty(0, dtype=float)
        low = self.domain.low
        high = self.domain.high
        if n == 1:
            # Update streams sample one value at a time, so this path runs
            # hundreds of thousands of times per experiment.  Draw the same
            # 16-wide batch the general path would (the consumed RNG stream
            # is unchanged), then scan it as Python floats: the first
            # in-domain value is exactly ``kept[0]`` below, without the
            # four small-array kernel launches of the mask-and-select.
            for _ in range(max_rounds):
                for value in draw(16, rng).tolist():
                    if low <= value <= high:
                        return np.array([value], dtype=float)
            raise RuntimeError(
                f"{self.name}: rejection sampling accepted too few draws; "
                "truncation bounds capture almost no probability mass"
            )
        # First round inline: for small n (estimation streams sample one
        # value at a time) the first batch nearly always suffices, and the
        # output buffer plus copy loop can be skipped entirely.  Draw sizes
        # and order are identical to the general loop, so the consumed RNG
        # stream — and therefore every downstream draw — is unchanged.
        batch = draw(max(n * 2, 16), rng)
        kept = batch[(batch >= low) & (batch <= high)]
        if kept.size >= n:
            return kept if kept.size == n else kept[:n]
        out = np.empty(n, dtype=float)
        out[: kept.size] = kept
        filled = kept.size
        for _ in range(max_rounds - 1):
            if filled >= n:
                break
            needed = n - filled
            batch = draw(max(needed * 2, 16), rng)
            kept = batch[(batch >= low) & (batch <= high)]
            take = min(kept.size, needed)
            out[filled : filled + take] = kept[:take]
            filled += take
        if filled < n:
            raise RuntimeError(
                f"{self.name}: rejection sampling accepted too few draws; "
                "truncation bounds capture almost no probability mass"
            )
        return out


@dataclass(frozen=True)
class UniformDistribution(Distribution):
    """Uniform over the domain — the no-skew control case."""

    _domain: Domain = UNIT_DOMAIN

    @property
    def name(self) -> str:
        return "uniform"

    @property
    def domain(self) -> Domain:
        return self._domain

    def cdf(self, x: np.ndarray | float) -> np.ndarray:
        u = self._domain.normalize(np.asarray(x, dtype=float))
        return np.clip(u, 0.0, 1.0)

    def pdf(self, x: np.ndarray | float) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        inside = (x >= self._domain.low) & (x <= self._domain.high)
        return np.where(inside, 1.0 / self._domain.width, 0.0)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(self._domain.low, self._domain.high, size=n)


@dataclass(frozen=True)
class TruncatedNormal(Distribution):
    """Normal(mean, std) truncated and renormalised to the domain."""

    mean: float = 0.5
    std: float = 0.15
    _domain: Domain = UNIT_DOMAIN

    def __post_init__(self) -> None:
        if self.std <= 0:
            raise ValueError(f"std must be positive, got {self.std}")

    @property
    def name(self) -> str:
        return "normal"

    @property
    def domain(self) -> Domain:
        return self._domain

    def _mass(self) -> float:
        lo = float(_phi((self._domain.low - self.mean) / self.std))
        hi = float(_phi((self._domain.high - self.mean) / self.std))
        return hi - lo

    def cdf(self, x: np.ndarray | float) -> np.ndarray:
        x = np.clip(np.asarray(x, dtype=float), self._domain.low, self._domain.high)
        lo = float(_phi((self._domain.low - self.mean) / self.std))
        raw = _phi((x - self.mean) / self.std) - lo
        return np.clip(raw / self._mass(), 0.0, 1.0)

    def pdf(self, x: np.ndarray | float) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        z = (x - self.mean) / self.std
        raw = np.exp(-0.5 * z * z) / (self.std * math.sqrt(2 * math.pi))
        inside = (x >= self._domain.low) & (x <= self._domain.high)
        return np.where(inside, raw / self._mass(), 0.0)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return self._rejection_sample(
            n, rng, lambda k, g: g.normal(self.mean, self.std, size=k)
        )


@dataclass(frozen=True)
class TruncatedExponential(Distribution):
    """Exponential decay from the domain's left edge, truncated at the right.

    ``rate`` is in units of 1/domain-width, so ``rate=5`` concentrates about
    99 % of the mass in the left two thirds of the domain.
    """

    rate: float = 5.0
    _domain: Domain = UNIT_DOMAIN

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")

    @property
    def name(self) -> str:
        return "exponential"

    @property
    def domain(self) -> Domain:
        return self._domain

    def cdf(self, x: np.ndarray | float) -> np.ndarray:
        u = np.clip(self._domain.normalize(np.asarray(x, dtype=float)), 0.0, 1.0)
        mass = 1.0 - math.exp(-self.rate)
        return (1.0 - np.exp(-self.rate * u)) / mass

    def pdf(self, x: np.ndarray | float) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        u = self._domain.normalize(x)
        mass = 1.0 - math.exp(-self.rate)
        raw = self.rate * np.exp(-self.rate * np.clip(u, 0.0, 1.0)) / mass
        inside = (x >= self._domain.low) & (x <= self._domain.high)
        return np.where(inside, raw / self._domain.width, 0.0)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        # Exact inverse-CDF sampling of the truncated exponential.
        u = rng.uniform(0.0, 1.0, size=n)
        mass = 1.0 - math.exp(-self.rate)
        unit = -np.log(1.0 - u * mass) / self.rate
        return np.asarray(self._domain.denormalize(unit), dtype=float)


@dataclass(frozen=True)
class BoundedPareto(Distribution):
    """Bounded Pareto — the continuous stand-in for Zipf-skewed data.

    Density ``∝ x^(-alpha-1)`` on ``[low, high]`` with ``low > 0``.  Larger
    ``alpha`` means heavier concentration near the low end; ``alpha → 0``
    approaches log-uniform.  Experiments use it as the "zipf" workload and
    sweep ``alpha`` as the skew parameter.
    """

    alpha: float = 1.0
    _domain: Domain = field(default_factory=lambda: Domain(0.01, 1.0))

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError(f"alpha must be positive, got {self.alpha}")
        if self._domain.low <= 0:
            raise ValueError("BoundedPareto requires a strictly positive lower bound")

    @property
    def name(self) -> str:
        return "zipf"

    @property
    def domain(self) -> Domain:
        return self._domain

    def cdf(self, x: np.ndarray | float) -> np.ndarray:
        x = np.clip(np.asarray(x, dtype=float), self._domain.low, self._domain.high)
        l, h, a = self._domain.low, self._domain.high, self.alpha
        return (1.0 - (l / x) ** a) / (1.0 - (l / h) ** a)

    def pdf(self, x: np.ndarray | float) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        l, h, a = self._domain.low, self._domain.high, self.alpha
        norm = a * l**a / (1.0 - (l / h) ** a)
        inside = (x >= l) & (x <= h)
        safe = np.where(inside, x, l)
        return np.where(inside, norm * safe ** (-a - 1.0), 0.0)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        # Exact inversion of the bounded-Pareto CDF.
        u = rng.uniform(0.0, 1.0, size=n)
        l, h, a = self._domain.low, self._domain.high, self.alpha
        return l / (1.0 - u * (1.0 - (l / h) ** a)) ** (1.0 / a)


@dataclass(frozen=True)
class MixtureDistribution(Distribution):
    """Finite mixture of component distributions over a common domain."""

    components: tuple[Distribution, ...]
    weights: tuple[float, ...]
    label: str = "mixture"

    def __post_init__(self) -> None:
        if len(self.components) != len(self.weights) or not self.components:
            raise ValueError("components and weights must be non-empty and equal length")
        if any(w <= 0 for w in self.weights):
            raise ValueError("mixture weights must be positive")
        if abs(sum(self.weights) - 1.0) > 1e-9:
            raise ValueError(f"mixture weights must sum to 1, got {sum(self.weights)}")
        first = self.components[0].domain
        for comp in self.components[1:]:
            if comp.domain != first:
                raise ValueError("all mixture components must share one domain")

    @property
    def name(self) -> str:
        return self.label

    @property
    def domain(self) -> Domain:
        return self.components[0].domain

    def cdf(self, x: np.ndarray | float) -> np.ndarray:
        return sum(
            w * comp.cdf(x) for comp, w in zip(self.components, self.weights)
        )

    def pdf(self, x: np.ndarray | float) -> np.ndarray:
        return sum(
            w * comp.pdf(x) for comp, w in zip(self.components, self.weights)
        )

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        choices = rng.choice(len(self.components), size=n, p=list(self.weights))
        out = np.empty(n, dtype=float)
        for index, comp in enumerate(self.components):
            mask = choices == index
            count = int(mask.sum())
            if count:
                out[mask] = comp.sample(count, rng)
        return out


def bimodal_mixture(
    domain: Domain = UNIT_DOMAIN,
    centers: Sequence[float] = (0.25, 0.75),
    stds: Sequence[float] = (0.06, 0.1),
    weights: Sequence[float] = (0.6, 0.4),
) -> MixtureDistribution:
    """The canonical multimodal workload: two well-separated Gaussian bumps."""
    components = tuple(
        TruncatedNormal(mean=c, std=s, _domain=domain) for c, s in zip(centers, stds)
    )
    return MixtureDistribution(components, tuple(weights), label="mixture")


@dataclass(frozen=True)
class DiscreteZipf(Distribution):
    """Discrete Zipf over ``k`` atoms spread across the domain.

    Mass on the ``r``-th atom is proportional to ``r^(-theta)``; atom
    locations are evenly spaced.  Unlike the continuous zoo members, this
    distribution's CDF is a *step function* — the stress case for the CDF
    machinery (atoms concentrate entire jumps on single peers) and the
    classic model for categorical popularity data (word frequencies,
    object accesses).
    """

    k: int = 100
    theta: float = 1.0
    _domain: Domain = UNIT_DOMAIN

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"need at least one atom, got {self.k}")
        if self.theta < 0:
            raise ValueError(f"theta must be >= 0, got {self.theta}")

    @property
    def name(self) -> str:
        return "zipf-discrete"

    @property
    def domain(self) -> Domain:
        return self._domain

    def atoms(self) -> np.ndarray:
        """The ``k`` atom locations (even grid, domain edges excluded)."""
        return np.asarray(
            self._domain.denormalize((np.arange(self.k) + 0.5) / self.k), dtype=float
        )

    def masses(self) -> np.ndarray:
        """Normalised Zipf masses, heaviest first atom."""
        ranks = np.arange(1, self.k + 1, dtype=float)
        raw = ranks ** (-self.theta)
        return raw / raw.sum()

    def cdf(self, x: np.ndarray | float) -> np.ndarray:
        x_arr = np.asarray(x, dtype=float)
        atoms = self.atoms()
        cumulative = np.concatenate(([0.0], np.cumsum(self.masses())))
        idx = np.searchsorted(atoms, np.atleast_1d(x_arr), side="right")
        out = cumulative[idx]
        return out if x_arr.ndim else float(out[0])

    def pdf(self, x: np.ndarray | float) -> np.ndarray:
        """Density does not exist for atoms; report mass at exact atom
        locations and 0 elsewhere (adequate for plotting/tests)."""
        x_arr = np.atleast_1d(np.asarray(x, dtype=float))
        atoms = self.atoms()
        masses = self.masses()
        out = np.zeros_like(x_arr)
        for index, atom in enumerate(atoms):
            out[np.isclose(x_arr, atom)] = masses[index]
        return out if np.ndim(x) else float(out[0])

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        choices = rng.choice(self.k, size=n, p=self.masses())
        return self.atoms()[choices]


DISTRIBUTION_NAMES = ("uniform", "normal", "zipf", "mixture", "exponential")
"""Names accepted by :func:`make_distribution`, in canonical table order.
``zipf-discrete`` is additionally available as an atom-heavy stress
workload but is excluded from the default experiment sweeps."""


def make_distribution(name: str, **params) -> Distribution:
    """Factory for the standard experiment workloads.

    Accepted names: ``uniform``, ``normal``, ``zipf``, ``mixture``,
    ``exponential``, and the extra stress workload ``zipf-discrete``.
    Keyword parameters override each distribution's defaults (e.g.
    ``make_distribution("zipf", alpha=1.5)``).
    """
    builders = {
        "uniform": UniformDistribution,
        "normal": TruncatedNormal,
        "zipf": BoundedPareto,
        "mixture": bimodal_mixture,
        "exponential": TruncatedExponential,
        "zipf-discrete": DiscreteZipf,
    }
    if name not in builders:
        known = tuple(builders)
        raise ValueError(f"unknown distribution {name!r}; choose from {known}")
    return builders[name](**params)
