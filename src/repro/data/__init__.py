"""Data substrate: domains, synthetic distributions, and workloads."""

from repro.data.distributions import (
    DISTRIBUTION_NAMES,
    BoundedPareto,
    DiscreteZipf,
    Distribution,
    MixtureDistribution,
    TruncatedExponential,
    TruncatedNormal,
    UniformDistribution,
    bimodal_mixture,
    make_distribution,
)
from repro.data.domain import UNIT_DOMAIN, Domain
from repro.data.workload import (
    Dataset,
    RangeQuery,
    RangeQueryWorkload,
    UpdateOp,
    UpdateStream,
    build_dataset,
)

__all__ = [
    "DISTRIBUTION_NAMES",
    "BoundedPareto",
    "Dataset",
    "DiscreteZipf",
    "Distribution",
    "Domain",
    "MixtureDistribution",
    "RangeQuery",
    "RangeQueryWorkload",
    "TruncatedExponential",
    "TruncatedNormal",
    "UNIT_DOMAIN",
    "UniformDistribution",
    "UpdateOp",
    "UpdateStream",
    "bimodal_mixture",
    "build_dataset",
    "make_distribution",
]
