"""Scalar data domains.

A :class:`Domain` is the closed value interval the network's
order-preserving hash covers.  Error metrics, density grids, and range
queries all need consistent domain handling, so it lives in one place.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Domain", "UNIT_DOMAIN"]


@dataclass(frozen=True)
class Domain:
    """A closed scalar interval ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not self.low < self.high:
            raise ValueError(f"empty domain [{self.low}, {self.high}]")

    @property
    def width(self) -> float:
        """Length of the interval."""
        return self.high - self.low

    def contains(self, value: float) -> bool:
        """Membership test (closed on both ends)."""
        return self.low <= value <= self.high

    def clamp(self, value: float) -> float:
        """Clip a value into the domain."""
        return min(max(value, self.low), self.high)

    def normalize(self, values: np.ndarray | float) -> np.ndarray | float:
        """Map domain values to ``[0, 1]``."""
        return (np.asarray(values, dtype=float) - self.low) / self.width

    def denormalize(self, units: np.ndarray | float) -> np.ndarray | float:
        """Map ``[0, 1]`` coordinates back to domain values."""
        return self.low + np.asarray(units, dtype=float) * self.width

    def grid(self, points: int) -> np.ndarray:
        """Evenly spaced evaluation grid including both endpoints."""
        if points < 2:
            raise ValueError(f"grid needs at least 2 points, got {points}")
        return np.linspace(self.low, self.high, points)

    def as_tuple(self) -> tuple[float, float]:
        """Plain-tuple view, for interoperating with the network layer."""
        return (self.low, self.high)


UNIT_DOMAIN = Domain(0.0, 1.0)
"""The default domain used throughout the experiments."""
