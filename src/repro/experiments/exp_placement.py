"""F14 — random vs. load-balanced peer placement.

Ring systems that run load balancers keep peer boundaries near the data's
equi-depth quantiles, which changes the estimation problem: per-peer
counts become nearly equal, so peer *positions* carry the distribution
and the length bias that breaks naive pooling mostly disappears.  This
experiment compares both placements on skewed data: load imbalance, and
the accuracy of every sampling estimator.
"""

from __future__ import annotations

import numpy as np

from repro.apps.load_balance import gini_coefficient
from repro.core.adaptive import AdaptiveDensityEstimator
from repro.core.baselines.naive import NaivePeerSamplingEstimator
from repro.core.baselines.random_walk import RandomWalkEstimator
from repro.core.cdf import empirical_cdf
from repro.core.estimator import DistributionFreeEstimator
from repro.core.metrics import ks_distance
from repro.data.workload import build_dataset
from repro.experiments.common import scale_int
from repro.experiments.config import DEFAULTS
from repro.experiments.results import ResultTable
from repro.ring.network import RingNetwork

EXPERIMENT_ID = "F14"
TITLE = "Random vs. load-balanced peer placement"
EXPECTATION = (
    "Balanced placement collapses the load Gini towards 0 but *moves* the "
    "skew into segment lengths: uniform-position probes now oversample "
    "the sparse tail, so naive stays biased and even one-shot dfde loses "
    "accuracy. Uniform-peer sampling (random walk) becomes competitive — "
    "equal per-peer counts make count-weighted pooling of uniform peers "
    "nearly exact. The adaptive estimator is the only method accurate "
    "under BOTH placements."
)


def run(scale: float = 1.0, seed: int = 0) -> ResultTable:
    """Run all sampling estimators under both placements on zipf data."""
    table = ResultTable(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        expectation=EXPECTATION,
        columns=["placement", "load_gini", "method", "ks"],
    )
    n_peers = scale_int(512, scale, minimum=32)
    n_items = scale_int(DEFAULTS.n_items, scale, minimum=2_000)
    repetitions = scale_int(DEFAULTS.repetitions, scale, minimum=2)
    probes = DEFAULTS.probes

    dataset = build_dataset("zipf", n_items, seed=seed)
    domain = dataset.distribution.domain.as_tuple()
    networks = {
        "random": RingNetwork.create(n_peers, domain=domain, seed=seed + 1),
        "balanced": RingNetwork.create_balanced(
            n_peers, dataset.values, domain=domain, seed=seed + 1
        ),
    }
    for placement, network in networks.items():
        network.load_data(dataset.values)
        network.reset_stats()
        truth = empirical_cdf(network.all_values(), presorted=True)
        grid = np.linspace(*domain, DEFAULTS.grid_points)
        gini = gini_coefficient(network.peer_loads().astype(float))
        for method, estimator in (
            ("naive", NaivePeerSamplingEstimator(probes=probes)),
            ("dfde", DistributionFreeEstimator(probes=probes)),
            ("adaptive", AdaptiveDensityEstimator(probes=probes)),
            ("random-walk", RandomWalkEstimator(probes=probes, walk_length=16)),
        ):
            errors = [
                ks_distance(
                    estimator.estimate(
                        network, rng=np.random.default_rng(seed * 17 + rep)
                    ).cdf,
                    truth,
                    grid,
                )
                for rep in range(repetitions)
            ]
            table.add_row(
                placement=placement,
                load_gini=gini,
                method=method,
                ks=float(np.mean(errors)),
            )
    return table
