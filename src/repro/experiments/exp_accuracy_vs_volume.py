"""F10 — estimation accuracy vs. global data volume.

Accuracy should be governed by the probe budget and synopsis resolution,
not by how much data the network stores: the per-peer synopsis compresses
any local volume into ``B`` buckets, so error stays flat while volume
grows 30x.  The estimated total ``n̂`` should track the true volume.
"""

from __future__ import annotations

from repro.core.adaptive import AdaptiveDensityEstimator
from repro.core.estimator import DistributionFreeEstimator
from repro.experiments.common import measure_estimator, scale_int, scale_list
from repro.experiments.config import DEFAULTS, setup_network
from repro.experiments.results import ResultTable

EXPERIMENT_ID = "F10"
TITLE = "Accuracy vs. global data volume"
EXPECTATION = (
    "KS error is flat in data volume at fixed s and B; the volume "
    "estimate n_hat stays within ~10% of the true n across the sweep."
)

VOLUMES = [10_000, 30_000, 100_000, 300_000]
DISTRIBUTION = "normal"


def run(scale: float = 1.0, seed: int = 0) -> ResultTable:
    """Sweep the data volume with network and budget fixed."""
    table = ResultTable(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        expectation=EXPECTATION,
        columns=["n_items", "method", "ks", "l1", "n_items_estimated"],
    )
    n_peers = scale_int(512, scale, minimum=32)
    repetitions = scale_int(DEFAULTS.repetitions, scale, minimum=2)
    volumes = scale_list(VOLUMES, min(scale, 1.0), minimum=1_000)

    for n_items in volumes:
        fixture = setup_network(DISTRIBUTION, n_peers=n_peers, n_items=n_items, seed=seed)
        for method, estimator in (
            ("dfde", DistributionFreeEstimator(probes=DEFAULTS.probes)),
            ("adaptive", AdaptiveDensityEstimator(probes=DEFAULTS.probes)),
        ):
            run_stats = measure_estimator(fixture, estimator, repetitions, seed)
            table.add_row(
                n_items=n_items,
                method=method,
                ks=run_stats["ks"],
                l1=run_stats["l1"],
                n_items_estimated=run_stats["n_items"],
            )
    return table
