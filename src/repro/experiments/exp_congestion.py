"""F19 — lookup latency and hot-peer congestion under concurrent load.

Message counts say nothing about *when* messages arrive.  The event engine
(:mod:`repro.ring.events`) gives every hop a delivery delay and every peer
a single-server processing queue, so a storm of concurrent lookups exposes
what the synchronous simulator cannot: completion-latency percentiles and
queueing at hot peers (the high-in-degree fingers every storm converges
on).  This experiment sweeps the offered concurrency against per-peer
service time and reports the latency distribution alongside the deepest
queue observed — all in simulated time, so the table is a pure function of
``(seed, scale)`` like every other figure.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import scale_int, scale_list
from repro.experiments.results import ResultTable
from repro.ring.events import EventEngine, LatencyModel, ServiceModel, schedule_lookup
from repro.ring.network import RingNetwork

EXPERIMENT_ID = "F19"
TITLE = "Lookup latency and hot-peer congestion under concurrent load"
EXPECTATION = (
    "With zero service time, p50 latency sits near the hop latency times "
    "~log2(N)/2 hops and p99 roughly doubles it, independent of "
    "concurrency (pure delays do not queue).  With a nonzero service "
    "time, queueing kicks in: p99 latency and the hot peer's maximum "
    "queue depth grow with concurrency while mean hops stay flat — "
    "congestion, not path length, is what degrades."
)

#: Lookups in flight simultaneously (each storm starts at time zero).
CONCURRENCY = [16, 64, 256]
#: Per-message service time at the destination, in units of the base hop
#: latency (0 = infinite capacity, the pure-delay reference point).
SERVICE_TIMES = (0.0, 0.25)
#: Per-hop delivery delay: base 1.0 plus uniform jitter.
HOP_LATENCY = LatencyModel(base=1.0, jitter=0.5)


def run(scale: float = 1.0, seed: int = 0) -> ResultTable:
    """Sweep concurrency x service time on one fixed ring."""
    table = ResultTable(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        expectation=EXPECTATION,
        columns=[
            "concurrency",
            "service_time",
            "p50_latency",
            "p99_latency",
            "mean_hops",
            "max_queue_depth",
        ],
    )
    n_peers = scale_int(1024, scale, minimum=32)
    storms = scale_list(CONCURRENCY, min(scale, 1.0), minimum=4)

    for service_time in SERVICE_TIMES:
        for concurrency in storms:
            # Fresh fixture per cell: queue state and engine jitter must
            # not leak between cells, and the network RNG stays untouched
            # by routing (loss-free lookups draw nothing), so each cell is
            # a pure function of its seeds.
            network = RingNetwork.create(n_peers, seed=seed + 1)
            engine = EventEngine(
                network,
                seed=seed + 2,
                latency=HOP_LATENCY,
                service=ServiceModel(service_time) if service_time > 0.0 else None,
            )
            cell_rng = np.random.default_rng(seed * 31 + concurrency)
            ids = network.peer_ids()
            entries = cell_rng.integers(0, len(ids), size=concurrency)
            keys = cell_rng.integers(0, network.space.size, size=concurrency, dtype=np.uint64)
            tasks = [
                schedule_lookup(engine, network.node(ids[int(e)]), int(k), tag=i)
                for i, (e, k) in enumerate(zip(entries, keys))
            ]
            engine.run()
            latencies = np.asarray([task.latency for task in tasks], dtype=float)
            hops = np.asarray([task.hops for task in tasks], dtype=float)
            table.add_row(
                concurrency=concurrency,
                service_time=service_time,
                p50_latency=float(np.percentile(latencies, 50)),
                p99_latency=float(np.percentile(latencies, 99)),
                mean_hops=float(hops.mean()),
                max_queue_depth=engine.max_queue_depth,
            )
    return table
