"""F6 — estimation under churn: the *dynamic* half of the paper's title.

Drive the overlay with increasing churn rates, re-estimating as the
network evolves.  Ground truth is recomputed against the data the network
*currently* stores (crashes lose items), so the reported error is pure
estimation error under stale pointers and ongoing maintenance, not the
trivial drift of the dataset itself.
"""

from __future__ import annotations

import numpy as np

from repro.core.cdf import empirical_cdf
from repro.core.estimator import DistributionFreeEstimator
from repro.core.metrics import evaluate_estimate
from repro.core.synopsis import summarize_peer
from repro.experiments.common import scale_int
from repro.experiments.config import DEFAULTS, setup_network
from repro.experiments.results import ResultTable
from repro.ring.churn import ChurnConfig, ChurnProcess
from repro.ring.serialization import clone_network

EXPERIMENT_ID = "F6"
TITLE = "Estimation accuracy under churn"
EXPECTATION = (
    "Accuracy degrades gracefully with churn rate: routing still succeeds "
    "(maintenance repairs pointers), per-estimate hop counts rise "
    "moderately, and KS error grows by small factors even at 10% turnover "
    "per round."
)

CHURN_RATES = [0.0, 0.01, 0.02, 0.05, 0.10]
ROUNDS = 20
ESTIMATE_EVERY = 5


def run(scale: float = 1.0, seed: int = 0) -> ResultTable:
    """Sweep churn rates; estimate periodically while the ring evolves."""
    table = ResultTable(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        expectation=EXPECTATION,
        columns=[
            "churn_rate",
            "rounds",
            "mean_ks",
            "mean_hops",
            "peers_final",
            "items_lost",
        ],
    )
    n_peers = scale_int(256, scale, minimum=24)
    n_items = scale_int(30_000, scale, minimum=2_000)
    rounds = scale_int(ROUNDS, min(scale, 1.0), minimum=4)
    estimator = DistributionFreeEstimator(probes=DEFAULTS.probes)

    # Every churn rate starts from the identical seeded fixture, so build it
    # once and hand each sweep cell a structural clone (RNG stream position
    # included — the clone behaves byte-identically to a fresh build).  When
    # a fault profile is active the plane's stateful RNG makes the fixture
    # non-clonable, so each cell rebuilds fresh exactly as before.
    base = setup_network("mixture", n_peers=n_peers, n_items=n_items, seed=seed)
    reusable = base.network.faults is None
    if reusable:
        # Pre-build every peer's synopsis once on the base: clones inherit
        # the memo, so probes against peers whose store and predecessor are
        # still at fixture state answer from cache in every sweep cell.
        for node in base.network.peers():
            summarize_peer(
                base.network,
                node,
                estimator.synopsis_buckets,
                kind=estimator.synopsis_kind,
            )

    for churn_rate in CHURN_RATES:
        if reusable:
            network = clone_network(base.network)
        else:
            network = setup_network(
                "mixture", n_peers=n_peers, n_items=n_items, seed=seed
            ).network
        process = ChurnProcess(
            network,
            ChurnConfig(join_rate=churn_rate, leave_rate=churn_rate, crash_fraction=0.5),
            rng=np.random.default_rng(seed + 99),
        )
        ks_values: list[float] = []
        hops_values: list[float] = []
        items_lost = 0
        truth = None
        truth_version = None
        for round_index in range(rounds):
            report = process.run_round()
            items_lost += report.items_lost
            if (round_index + 1) % max(ESTIMATE_EVERY, 1) == 0 or round_index == rounds - 1:
                # Ground truth only moves when stored data moves; rounds of
                # pure maintenance (and the zero-churn sweep cell) reuse it.
                if truth is None or truth_version != network.data_version:
                    truth = empirical_cdf(network.all_values(), presorted=True)
                    truth_version = network.data_version
                estimate = estimator.estimate(
                    network, rng=np.random.default_rng(seed * 131 + round_index)
                )
                error = evaluate_estimate(estimate.cdf, truth, network.domain)
                ks_values.append(error.ks)
                hops_values.append(float(estimate.hops))
        table.add_row(
            churn_rate=churn_rate,
            rounds=rounds,
            mean_ks=float(np.mean(ks_values)),
            mean_hops=float(np.mean(hops_values)),
            peers_final=network.n_peers,
            items_lost=items_lost,
        )
    return table
