"""F4 — all methods, head to head: accuracy and cost per distribution.

Every estimator in the repository runs with its natural configuration on
three representative workloads.  This is the summary figure: who is
accurate, who is cheap, and who is both.
"""

from __future__ import annotations

from repro.core.adaptive import AdaptiveDensityEstimator
from repro.core.baselines.gossip import PushSumHistogramEstimator
from repro.core.baselines.naive import NaivePeerSamplingEstimator
from repro.core.baselines.parametric import ParametricEstimator
from repro.core.baselines.random_walk import RandomWalkEstimator
from repro.core.cdf_compute import ExactCdfEstimator
from repro.core.estimator import DistributionFreeEstimator
from repro.experiments.common import measure_estimator, scale_int
from repro.experiments.config import DEFAULTS, setup_network
from repro.experiments.results import ResultTable

EXPERIMENT_ID = "F4"
TITLE = "Method comparison (accuracy and message cost)"
EXPECTATION = (
    "dfde/adaptive reach within a few x of the exact computation's "
    "accuracy at 1-2 orders of magnitude fewer messages; gossip and exact "
    "are accurate but cost Theta(N) or more; naive is biased on skewed "
    "data; parametric wins only on its own family (normal) and fails on "
    "zipf/mixture."
)

DISTRIBUTIONS = ("normal", "zipf", "mixture")


def make_estimators(probes: int):
    """The comparison roster at a common probe budget."""
    return (
        ("dfde", DistributionFreeEstimator(probes=probes)),
        ("adaptive", AdaptiveDensityEstimator(probes=probes)),
        ("naive", NaivePeerSamplingEstimator(probes=probes)),
        ("random-walk", RandomWalkEstimator(probes=probes, walk_length=16)),
        ("gossip", PushSumHistogramEstimator(rounds=30)),
        ("parametric", ParametricEstimator(probes=probes, family="normal")),
        ("exact", ExactCdfEstimator()),
    )


def run(scale: float = 1.0, seed: int = 0) -> ResultTable:
    """Run the full roster on each workload."""
    table = ResultTable(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        expectation=EXPECTATION,
        columns=["distribution", "method", "ks", "l1", "messages", "hops"],
    )
    n_peers = scale_int(DEFAULTS.n_peers, scale, minimum=32)
    n_items = scale_int(DEFAULTS.n_items, scale, minimum=2_000)
    repetitions = scale_int(DEFAULTS.repetitions, scale, minimum=2)

    for distribution in DISTRIBUTIONS:
        fixture = setup_network(distribution, n_peers=n_peers, n_items=n_items, seed=seed)
        for method, estimator in make_estimators(DEFAULTS.probes):
            # Exact and gossip are deterministic-ish and expensive; one
            # repetition is representative.
            reps = 1 if method in ("exact", "gossip") else repetitions
            run_stats = measure_estimator(fixture, estimator, reps, seed)
            table.add_row(
                distribution=distribution,
                method=method,
                ks=run_stats["ks"],
                l1=run_stats["l1"],
                messages=run_stats["messages"],
                hops=run_stats["hops"],
            )
    return table
