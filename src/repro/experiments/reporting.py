"""Report writer: persist experiment results as Markdown.

``repro-experiments --report out/`` (or :func:`write_report` directly)
renders each :class:`~repro.experiments.results.ResultTable` as a Markdown
section with a GitHub-style table, plus an index file.  The benchmark
output and EXPERIMENTS.md are hand-curated; this writer is for archiving
arbitrary runs (different scales, seeds, parameter overrides)
reproducibly.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.experiments.results import ResultTable, _format_cell

__all__ = ["table_to_markdown", "write_report"]


def table_to_markdown(table: ResultTable) -> str:
    """One result table as a Markdown section."""
    lines = [
        f"## {table.experiment_id} — {table.title}",
        "",
        f"*Expectation:* {table.expectation}",
        "",
    ]
    header = list(table.columns)
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "|".join("---" for _ in header) + "|")
    for row in table.rows:
        cells = [_format_cell(row[column]) for column in header]
        lines.append("| " + " | ".join(cells) + " |")
    lines.append("")
    return "\n".join(lines)


def write_report(
    tables: Sequence[ResultTable] | Iterable[ResultTable],
    directory: str | Path,
    title: str = "Experiment results",
) -> Path:
    """Write one Markdown file per table plus an ``index.md``.

    Returns the path of the index file.  The directory is created if
    missing; existing files with the same names are overwritten.
    """
    tables = list(tables)
    if not tables:
        raise ValueError("need at least one result table to report")
    out_dir = Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)

    index_lines = [f"# {title}", ""]
    for table in tables:
        filename = f"{table.experiment_id.lower()}.md"
        (out_dir / filename).write_text(table_to_markdown(table), encoding="utf-8")
        index_lines.append(
            f"- [{table.experiment_id} — {table.title}]({filename}) "
            f"({len(table)} rows)"
        )
    index_lines.append("")
    index_path = out_dir / "index.md"
    index_path.write_text("\n".join(index_lines), encoding="utf-8")
    return index_path
