"""F5 — the cost–accuracy trade-off curves.

Sweep each method's budget knob and report (messages, error) pairs: the
frontier plot.  The paper's efficiency claim is that the sampling methods
sit far left of gossip/exact at comparable error.
"""

from __future__ import annotations

from repro.core.adaptive import AdaptiveDensityEstimator
from repro.core.baselines.gossip import PushSumHistogramEstimator
from repro.core.baselines.naive import NaivePeerSamplingEstimator
from repro.core.baselines.random_walk import RandomWalkEstimator
from repro.core.estimator import DistributionFreeEstimator
from repro.experiments.common import measure_estimator, scale_int, scale_list
from repro.experiments.config import DEFAULTS, setup_network
from repro.experiments.results import ResultTable

EXPERIMENT_ID = "F5"
TITLE = "Cost vs. accuracy trade-off"
EXPECTATION = (
    "On the (messages, KS) plane the dfde/adaptive curves dominate: naive "
    "flattens at its bias floor, random-walk pays ~walk_length extra hops "
    "per probe, and gossip needs orders of magnitude more messages to "
    "reach comparable error."
)

PROBE_SWEEP = [8, 16, 32, 64, 128, 256]
GOSSIP_ROUNDS = [5, 10, 20, 40]
DISTRIBUTION = "mixture"


def run(scale: float = 1.0, seed: int = 0) -> ResultTable:
    """Budget sweeps for every method on the mixture workload."""
    table = ResultTable(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        expectation=EXPECTATION,
        columns=["method", "budget", "messages", "hops", "ks", "l1"],
    )
    n_peers = scale_int(DEFAULTS.n_peers, scale, minimum=32)
    n_items = scale_int(DEFAULTS.n_items, scale, minimum=2_000)
    repetitions = scale_int(DEFAULTS.repetitions, scale, minimum=2)
    fixture = setup_network(DISTRIBUTION, n_peers=n_peers, n_items=n_items, seed=seed)

    probe_sweep = scale_list(PROBE_SWEEP, min(scale, 1.0), minimum=4)
    for probes in probe_sweep:
        sweeps = (
            ("dfde", DistributionFreeEstimator(probes=probes)),
            ("adaptive", AdaptiveDensityEstimator(probes=max(probes, 2))),
            ("naive", NaivePeerSamplingEstimator(probes=probes)),
            ("random-walk", RandomWalkEstimator(probes=probes, walk_length=16)),
        )
        for method, estimator in sweeps:
            run_stats = measure_estimator(fixture, estimator, repetitions, seed)
            table.add_row(
                method=method,
                budget=probes,
                messages=run_stats["messages"],
                hops=run_stats["hops"],
                ks=run_stats["ks"],
                l1=run_stats["l1"],
            )

    for rounds in scale_list(GOSSIP_ROUNDS, min(scale, 1.0), minimum=2):
        estimator = PushSumHistogramEstimator(rounds=rounds)
        run_stats = measure_estimator(fixture, estimator, 1, seed)
        table.add_row(
            method="gossip",
            budget=rounds,
            messages=run_stats["messages"],
            hops=run_stats["hops"],
            ks=run_stats["ks"],
            l1=run_stats["l1"],
        )
    return table
