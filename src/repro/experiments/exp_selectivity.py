"""F8 — range-query selectivity estimation accuracy.

The query-processing application: estimate the selectivity of random range
queries from the density estimate and compare against the network's actual
contents, across query spans and workloads.
"""

from __future__ import annotations

import numpy as np

from repro.apps.selectivity import evaluate_selectivity
from repro.core.adaptive import AdaptiveDensityEstimator
from repro.core.estimator import DistributionFreeEstimator
from repro.data.workload import RangeQueryWorkload
from repro.experiments.common import scale_int
from repro.experiments.config import DEFAULTS, setup_network
from repro.experiments.results import ResultTable

EXPERIMENT_ID = "F8"
TITLE = "Range-query selectivity estimation"
EXPECTATION = (
    "Mean absolute selectivity error stays in the low single-digit "
    "percent across spans; relative error is largest for the narrowest "
    "queries (local density matters most there) and shrinks with span."
)

SPANS = [0.02, 0.05, 0.10, 0.20, 0.50]
DISTRIBUTIONS = ("normal", "zipf")
QUERIES_PER_SPAN = 200


def run(scale: float = 1.0, seed: int = 0) -> ResultTable:
    """Evaluate selectivity error across spans and workloads."""
    table = ResultTable(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        expectation=EXPECTATION,
        columns=[
            "distribution",
            "method",
            "span",
            "mean_abs_error",
            "mean_rel_error",
            "mean_true_sel",
        ],
    )
    n_peers = scale_int(DEFAULTS.n_peers, scale, minimum=32)
    n_items = scale_int(DEFAULTS.n_items, scale, minimum=2_000)
    queries = scale_int(QUERIES_PER_SPAN, min(scale, 1.0), minimum=20)

    for distribution in DISTRIBUTIONS:
        fixture = setup_network(distribution, n_peers=n_peers, n_items=n_items, seed=seed)
        true_values = fixture.network.all_values()
        for method, estimator in (
            ("dfde", DistributionFreeEstimator(probes=DEFAULTS.probes)),
            ("adaptive", AdaptiveDensityEstimator(probes=DEFAULTS.probes)),
        ):
            estimate = estimator.estimate(
                fixture.network, rng=np.random.default_rng(seed + 31)
            )
            for span in SPANS:
                workload = RangeQueryWorkload.random(
                    fixture.domain, queries, span_fraction=span, seed=seed
                )
                report = evaluate_selectivity(estimate, workload, true_values, presorted=True)
                table.add_row(
                    distribution=distribution,
                    method=method,
                    span=span,
                    mean_abs_error=report.mean_abs_error,
                    mean_rel_error=report.mean_relative_error,
                    mean_true_sel=report.mean_true_selectivity,
                )
    return table
