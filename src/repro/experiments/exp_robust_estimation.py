"""F20 — robust estimation under combined faults and pollution attack.

The head-to-head the fault plane was built for: four estimator families
run through identical fault and attack schedules — the trusting HT probe
estimator, the hardened probe estimator (neighbourhood density screen
composed with winsorized HT weights from :mod:`repro.core.robust`),
the Spectra-style mass-conserving epidemic
(:class:`~repro.core.baselines.spectra.SpectraEstimator`), and the
push-sum gossip baseline whose in-flight mass a dropped message
destroys.  Measured per cell: worst-case and average CDF error, message
cost, and convergence rounds, so the robustness each design buys is
priced in messages next to the accuracy it saves.
"""

from __future__ import annotations

import numpy as np

from repro.core.baselines import PushSumHistogramEstimator, SpectraEstimator
from repro.core.byzantine import ByzantineBehavior, corrupt_network
from repro.core.cdf import empirical_cdf
from repro.core.estimator import DistributionFreeEstimator
from repro.data.workload import build_dataset
from repro.experiments.common import parallel_map, scale_int
from repro.experiments.config import DEFAULTS
from repro.experiments.results import ResultTable
from repro.ring.faults import plane_from_profile
from repro.ring.network import RingNetwork

EXPERIMENT_ID = "F20"
TITLE = "Robust estimation: probes vs. epidemics under faults and liars"
EXPECTATION = (
    "Fault-free with no liars, every estimator is accurate and trusting "
    "HT is cheapest.  Add 10-20% liars and the trusting estimator is "
    "dragged to the attack value while robust-HT (density screen + "
    "winsorized weights) and the screened Spectra epidemic stay near "
    "clean accuracy.  Under the heavy fault profile (loss + stalls + "
    "partition), probe estimators lose the evidence behind the partition "
    "but degrade gracefully; Spectra's mass-conserving exchanges and "
    "multi-entry readout hold the lowest error, while push-sum — which "
    "destroys in-flight mass on every drop — collapses.  The price is "
    "message cost: epidemics spend orders of magnitude more than probes."
)

#: Fault severities swept (profile name or None), in increasing order.
FAULT_PROFILES: tuple[str | None, ...] = (None, "heavy")
LIAR_FRACTIONS = (0.0, 0.10, 0.20)
ATTACK_VALUE = 0.9
#: Shared round budget for both epidemic baselines.  Robust-HT composes
#: the neighbourhood density screen (catches blatant isolated liars) with
#: winsorized HT weights (clamps any screen survivor — under the repo's
#: order-preserving placement, rank-trimming would instead discard the
#: densest *honest* replies and erase the distribution's centre; see
#: :mod:`repro.core.robust`).
EPIDEMIC_ROUNDS = 40
WINSORIZE_FRACTION = 0.10
SCREEN_RATIO = 20.0


def _estimators() -> list[tuple[str, object]]:
    """The contenders, rebuilt per block so blocks stay self-contained."""
    probes = DEFAULTS.probes
    return [
        ("trusting-ht", DistributionFreeEstimator(probes=probes)),
        (
            "robust-ht",
            DistributionFreeEstimator(
                probes=probes,
                trim_density_ratio=SCREEN_RATIO,
                robust="winsorized",
                trim_fraction=WINSORIZE_FRACTION,
            ),
        ),
        (
            "spectra",
            SpectraEstimator(rounds=EPIDEMIC_ROUNDS, trim_ratio=SCREEN_RATIO),
        ),
        ("push-sum", PushSumHistogramEstimator(rounds=EPIDEMIC_ROUNDS)),
    ]


def _run_cell_block(
    task: tuple[str | None, float, int, int, int, int],
) -> list[dict[str, object]]:
    """All estimator rows for one (fault profile, liar fraction) cell.

    Self-contained unit of parallelism: the block builds its own fixture,
    attack, and fault plane from explicit seeds, so the table is
    bit-identical whether blocks run serially or across worker processes.
    """
    profile, fraction, n_peers, n_items, repetitions, seed = task
    dataset = build_dataset(DEFAULTS.default_distribution, n_items, seed=seed)
    domain = dataset.distribution.domain.as_tuple()
    grid = np.linspace(*domain, DEFAULTS.grid_points)
    attack_value = domain[0] + ATTACK_VALUE * (domain[1] - domain[0])
    behavior = ByzantineBehavior(count_multiplier=100.0, fake_mass_at=attack_value)

    network = RingNetwork.create(n_peers, domain=domain, seed=seed + 1)
    network.load_data(dataset.values)
    network.reset_stats()
    if fraction > 0.0:
        corrupt_network(
            network, fraction, behavior, rng=np.random.default_rng(seed + 41)
        )
    # Truth is the honest data — the lie exists only in replies/synopses.
    truth_values = np.asarray(
        empirical_cdf(network.all_values(), presorted=True)(grid), dtype=float
    )

    rows: list[dict[str, object]] = []
    for name, estimator in _estimators():
        max_errors, avg_errors, messages, coverages, rounds = [], [], [], [], []
        for rep in range(repetitions):
            # Every contender faces the exact same fault realisation per
            # repetition: the delivery RNGs (the network's own generator
            # for base loss, the plane's for per-link overrides) are
            # stateful, so without a reset each estimator would inherit
            # whatever stream position the previous one left behind —
            # differences in a column would be luck, not the estimator.
            network.rng = np.random.default_rng(seed * 101 + rep)
            if profile is not None:
                network.install_faults(
                    plane_from_profile(
                        profile, seed=seed + 97, ring_size=network.space.size
                    ),
                    replace=True,
                )
            estimate = estimator.estimate(  # type: ignore[attr-defined]
                network, rng=np.random.default_rng(seed * 37 + rep)
            )
            deltas = np.abs(np.asarray(estimate.cdf(grid), dtype=float) - truth_values)
            max_errors.append(float(deltas.max()))
            avg_errors.append(float(deltas.mean()))
            messages.append(estimate.messages)
            coverages.append(estimate.coverage)
            rounds.append(estimate.latency_rounds)
        rows.append(
            dict(
                faults=profile or "none",
                liar_fraction=fraction,
                estimator=name,
                max_err=float(np.mean(max_errors)),
                avg_err=float(np.mean(avg_errors)),
                messages=float(np.mean(messages)),
                rounds=float(np.mean(rounds)),
                coverage=float(np.mean(coverages)),
            )
        )
    return rows


def run(scale: float = 1.0, seed: int = 0, workers: int = 1) -> ResultTable:
    """Sweep estimators over the fault-severity x liar-fraction grid."""
    table = ResultTable(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        expectation=EXPECTATION,
        columns=[
            "faults",
            "liar_fraction",
            "estimator",
            "max_err",
            "avg_err",
            "messages",
            "rounds",
            "coverage",
        ],
    )
    n_peers = scale_int(512, scale, minimum=32)
    n_items = scale_int(50_000, scale, minimum=2_000)
    repetitions = scale_int(DEFAULTS.repetitions, scale, minimum=2)

    tasks = [
        (profile, fraction, n_peers, n_items, repetitions, seed)
        for profile in FAULT_PROFILES
        for fraction in LIAR_FRACTIONS
    ]
    for rows in parallel_map(_run_cell_block, tasks, workers=workers):
        for row in rows:
            table.add_row(**row)
    return table
