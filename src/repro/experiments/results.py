"""Result tables: the rows/series each experiment reports.

A :class:`ResultTable` is a named list of uniform dict rows plus the
qualitative expectation the paper licenses for it.  ``to_text()`` renders
the fixed-width table the benchmark harness prints — the lines you compare
against the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

__all__ = ["ResultTable"]


def _format_cell(value: object) -> str:
    """Human-stable formatting: 4 significant digits for floats."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-4:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


@dataclass
class ResultTable:
    """One experiment's output: rows plus provenance."""

    experiment_id: str
    title: str
    expectation: str            # the qualitative paper-shape being tested
    columns: Sequence[str]
    rows: list[dict[str, object]] = field(default_factory=list)

    def add_row(self, **values: object) -> None:
        """Append a row; keys must match the declared columns."""
        missing = set(self.columns) - set(values)
        extra = set(values) - set(self.columns)
        if missing or extra:
            raise ValueError(
                f"row keys mismatch: missing {sorted(missing)}, extra {sorted(extra)}"
            )
        self.rows.append(dict(values))

    def column(self, name: str) -> list[object]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise KeyError(f"no column {name!r} in {list(self.columns)}")
        return [row[name] for row in self.rows]

    def series(self, x: str, y: str, where: dict[str, object] | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Extract an (x, y) numeric series, optionally filtered by ``where``."""
        rows: Iterable[dict[str, object]] = self.rows
        if where:
            rows = [r for r in rows if all(r.get(k) == v for k, v in where.items())]
        rows = list(rows)
        return (
            np.asarray([float(r[x]) for r in rows]),
            np.asarray([float(r[y]) for r in rows]),
        )

    def to_text(self) -> str:
        """Fixed-width rendering, one line per row."""
        header = list(self.columns)
        body = [[_format_cell(row[c]) for c in header] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [
            f"== {self.experiment_id}: {self.title} ==",
            f"expectation: {self.expectation}",
            "  ".join(h.ljust(w) for h, w in zip(header, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for row in body:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.rows)
