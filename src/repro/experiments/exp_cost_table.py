"""T2 — per-operation cost accounting.

The message/hop price of every primitive and estimator in the system, on
one default network.  This is the table that makes the asymptotic claims
(O(log N) per probe, Θ(N) per exact pass, Θ(R·N) per gossip estimate)
concrete.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.adaptive import AdaptiveDensityEstimator
from repro.core.baselines.gossip import PushSumHistogramEstimator
from repro.core.baselines.random_walk import RandomWalkEstimator
from repro.core.cdf_compute import (
    compute_global_cdf_broadcast,
    compute_global_cdf_traversal,
)
from repro.core.estimator import DistributionFreeEstimator
from repro.core.rank_sampling import build_prefix_index, sample_by_rank
from repro.core.cdf_sampling import collect_probes
from repro.experiments.common import scale_int
from repro.experiments.config import DEFAULTS, setup_network
from repro.experiments.results import ResultTable

EXPERIMENT_ID = "T2"
TITLE = "Per-operation message and hop costs"
EXPECTATION = (
    "One probe costs ~log2(N)/2 hops plus 2 messages; a full dfde/adaptive "
    "estimate costs ~s x that; exact passes cost Theta(N); gossip costs "
    "rounds x N; a rank sample costs one lookup plus one fetch."
)


def run(scale: float = 1.0, seed: int = 0) -> ResultTable:
    """Measure every operation on a default mixture-workload network."""
    table = ResultTable(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        expectation=EXPECTATION,
        columns=["operation", "messages", "hops", "payload", "unit"],
    )
    n_peers = scale_int(DEFAULTS.n_peers, scale, minimum=32)
    n_items = scale_int(DEFAULTS.n_items, scale, minimum=2_000)
    fixture = setup_network("mixture", n_peers=n_peers, n_items=n_items, seed=seed)
    network = fixture.network
    rng = np.random.default_rng(seed + 17)
    probes = DEFAULTS.probes

    def measure(label: str, unit: str, action) -> None:
        before = network.stats.snapshot()
        action()
        delta = before.delta(network.stats.snapshot())
        table.add_row(
            operation=label,
            messages=delta.messages,
            hops=delta.hops,
            payload=delta.payload,
            unit=unit,
        )

    table.add_row(
        operation=f"(context: N={n_peers}, log2N={math.log2(n_peers):.1f}, s={probes})",
        messages=0,
        hops=0,
        payload=0.0,
        unit="-",
    )
    measure(
        "single probe (routed lookup + reply)",
        "per probe",
        lambda: collect_probes(network, 1, DEFAULTS.synopsis_buckets, rng=rng),
    )
    measure(
        f"dfde estimate (s={probes})",
        "per estimate",
        lambda: DistributionFreeEstimator(probes=probes).estimate(network, rng=rng),
    )
    measure(
        f"adaptive estimate (s={probes})",
        "per estimate",
        lambda: AdaptiveDensityEstimator(probes=probes).estimate(network, rng=rng),
    )
    measure(
        "random-walk estimate (s=64, walk=16)",
        "per estimate",
        lambda: RandomWalkEstimator(probes=probes, walk_length=16).estimate(network, rng=rng),
    )
    measure(
        "exact CDF (successor traversal)",
        "per pass",
        lambda: compute_global_cdf_traversal(network),
    )
    measure(
        "exact CDF (finger broadcast)",
        "per pass",
        lambda: compute_global_cdf_broadcast(network),
    )
    measure(
        "gossip estimate (30 rounds)",
        "per estimate",
        lambda: PushSumHistogramEstimator(rounds=30).estimate(network, rng=rng),
    )

    index_holder: dict[str, object] = {}
    measure(
        "prefix index build",
        "per build",
        lambda: index_holder.__setitem__("index", build_prefix_index(network)),
    )
    before = network.stats.snapshot()
    sample_by_rank(network, index_holder["index"], 10, rng=rng)
    delta = before.delta(network.stats.snapshot())
    table.add_row(
        operation="rank sample",
        messages=delta.messages / 10.0,
        hops=delta.hops / 10.0,
        payload=delta.payload / 10.0,
        unit="per sample",
    )
    return table
