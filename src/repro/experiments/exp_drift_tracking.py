"""F11 — continuous estimation under data drift.

The data distribution drifts over time (inserts come from a moving
distribution, deletes remove old items).  Three maintenance policies keep
a served model fresh: never refresh, refresh every round, and the
drift-triggered policy of :class:`~repro.core.tracking.ContinuousEstimator`.
Reported per policy: mean served-model error over the run, and total
maintenance messages — the accuracy-per-message frontier.
"""

from __future__ import annotations

import numpy as np

from repro.core.cdf import empirical_cdf
from repro.core.estimator import DistributionFreeEstimator
from repro.core.metrics import ks_distance
from repro.core.tracking import ContinuousEstimator
from repro.data.distributions import TruncatedNormal
from repro.data.domain import UNIT_DOMAIN
from repro.data.workload import UpdateStream
from repro.experiments.common import scale_int
from repro.experiments.config import DEFAULTS, setup_network
from repro.experiments.results import ResultTable

EXPERIMENT_ID = "F11"
TITLE = "Continuous estimation under data drift"
EXPECTATION = (
    "Never-refresh degrades steadily as the data drifts; every-round "
    "refresh is accurate but pays the full estimate each round; the "
    "drift-triggered policy holds near every-round accuracy at a "
    "fraction of its messages."
)

ROUNDS = 24


def _apply_updates(network, stream, count: int) -> None:
    """Feed ``count`` stream operations into the network's stores.

    The stream is drained first (preserving its per-op RNG draw order
    exactly), then owners are resolved for the whole batch in one
    vectorized pass — membership never changes mid-batch, so the per-op
    scalar resolution would return the same peers.
    """
    ops = list(stream.ops(count))
    if not ops:
        return
    owners = network.owners_of_values(np.asarray([op.value for op in ops], dtype=float))
    for op, owner in zip(ops, owners):
        if op.kind == "insert":
            owner.store.insert(op.value)
        else:
            owner.store.remove(op.value)


def run(scale: float = 1.0, seed: int = 0) -> ResultTable:
    """Drift the data for ``ROUNDS`` rounds under three refresh policies."""
    table = ResultTable(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        expectation=EXPECTATION,
        columns=["policy", "mean_ks", "max_ks", "maintenance_messages", "refreshes"],
    )
    n_peers = scale_int(256, scale, minimum=24)
    n_items = scale_int(40_000, scale, minimum=2_000)
    rounds = scale_int(ROUNDS, min(scale, 1.0), minimum=6)
    # Turn over ~1/8 of the data per round so the full run replaces the
    # dataset several times — a genuinely drifting workload.
    updates = max(n_items // 8, 200)
    probes = DEFAULTS.probes

    policies = {
        "never": {"refresh_every": 0},
        "every-round": {"refresh_every": 1},
        "every-4": {"refresh_every": 4},
        "drift-triggered": {"refresh_every": -1},
    }
    for policy, config in policies.items():  # repro-lint: disable=SUM001 (dict literal: fixed insertion order; accumulators reset per policy)
        fixture = setup_network("normal", n_peers=n_peers, n_items=n_items, seed=seed)
        network = fixture.network
        # Drift: inserts slide from the original mean towards the right edge.
        rng = np.random.default_rng(seed + 71)
        tracker = ContinuousEstimator(
            estimator=DistributionFreeEstimator(probes=probes),
            drift_threshold=0.10,
            check_probes=8,
        )
        network.reset_stats()
        tracker.refresh(network, rng=rng)
        maintenance_start = network.stats.messages

        stream = UpdateStream(fixture.dataset, insert_fraction=0.5, seed=seed + 5)
        ks_trace: list[float] = []
        refreshes = 0
        for round_index in range(rounds):
            drifted_mean = 0.5 + 0.45 * (round_index + 1) / rounds
            stream.insert_distribution = TruncatedNormal(
                mean=drifted_mean, std=0.08, _domain=UNIT_DOMAIN
            )
            _apply_updates(network, stream, updates)

            refresh_every = config["refresh_every"]
            if refresh_every == -1:
                action = tracker.maintain(network, rng=rng)
                refreshes += action.action == "refreshed"
            elif refresh_every and (round_index + 1) % refresh_every == 0:
                tracker.refresh(network, rng=rng)
                refreshes += 1

            truth = empirical_cdf(network.all_values(), presorted=True)
            grid = np.linspace(*network.domain, DEFAULTS.grid_points)
            ks_trace.append(ks_distance(tracker.current.cdf, truth, grid))

        table.add_row(
            policy=policy,
            mean_ks=float(np.mean(ks_trace)),
            max_ks=float(np.max(ks_trace)),
            maintenance_messages=network.stats.messages - maintenance_start,
            refreshes=refreshes,
        )
    return table
