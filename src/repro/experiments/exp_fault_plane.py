"""F18 — degraded estimation under injected faults vs. retry budget.

The fault plane injects increasingly severe fault mixes (message loss,
peer stalls, a ring partition) while the estimator runs under *bounded*
retry policies.  Measured per cell: evidence coverage, accuracy of the
degraded estimate, and message cost against the policy's hard ceiling.
The point of the figure: degradation is graceful and monotone in fault
severity, cost never exceeds the retry budget (no retry-forever blowups),
and a larger retry budget buys back coverage under probabilistic loss but
cannot recover evidence that stalls or partitions removed.
"""

from __future__ import annotations

import numpy as np

from repro.core.cdf import empirical_cdf
from repro.core.estimator import DistributionFreeEstimator
from repro.core.metrics import ks_distance
from repro.data.workload import build_dataset
from repro.experiments.common import parallel_map, scale_int
from repro.experiments.config import DEFAULTS
from repro.experiments.results import ResultTable
from repro.ring.faults import FaultPlane, RetryPolicy
from repro.ring.network import RingNetwork
from repro.ring.serialization import clone_network

EXPERIMENT_ID = "F18"
TITLE = "Fault injection: coverage, accuracy, and bounded retry cost"
EXPECTATION = (
    "Coverage falls and KS error rises monotonically with fault severity "
    "(none -> loss -> loss+stalls -> loss+stalls+partition) while message "
    "cost stays under the retry policy's ceiling in every cell.  A larger "
    "retry budget restores coverage under pure message loss but cannot "
    "recover evidence behind stalled peers or a partition."
)

#: Fault scenarios in increasing severity.  Loss is the retry-sensitive
#: dimension (retransmission can win); stalls and partitions remove
#: evidence no retry budget recovers.
SCENARIOS: tuple[tuple[str, dict[str, float]], ...] = (
    ("none", {}),
    ("loss", {"loss_rate": 0.25}),
    ("loss+stalls", {"loss_rate": 0.25, "stall_fraction": 0.20}),
    (
        "loss+stalls+partition",
        {"loss_rate": 0.25, "stall_fraction": 0.20, "partition_arcs": 2},
    ),
)

RETRY_ATTEMPTS = (2, 4, 8)


def _install_scenario(
    network: RingNetwork, spec: dict[str, float], seed: int
) -> None:
    """Attach a fault plane realising one scenario, via the public API."""
    if not spec:
        return
    plane = FaultPlane(seed=seed, loss_rate=spec.get("loss_rate", 0.0))
    # replace=True: the controlled scenario displaces any whole-suite
    # profile plane (REPRO_FAULT_PROFILE) the fixture came with.
    network.install_faults(plane, replace=True)
    stall_fraction = spec.get("stall_fraction", 0.0)
    if stall_fraction:
        plane.at(plane.round, stall_fraction=stall_fraction)
        plane.advance(network)
    arcs = int(spec.get("partition_arcs", 0))
    if arcs >= 2:
        size = network.space.size
        plane.partition([size * i // arcs for i in range(arcs)])


def _run_scenario_block(
    task: tuple[str, dict[str, float], int, int, int, int],
) -> list[dict[str, object]]:
    """All rows for one fault scenario: a self-contained unit of parallelism.

    Builds its own fixture and plane from the explicit seed, so blocks are
    independent and the table is bit-identical whether they run serially or
    fanned across worker processes.
    """
    scenario, spec, n_peers, n_items, repetitions, seed = task
    dataset = build_dataset("mixture", n_items, seed=seed)
    domain = dataset.distribution.domain.as_tuple()
    probes = DEFAULTS.probes

    # The three retry budgets run against identical fixtures, so build the
    # base once and clone it per cell; only the fault plane — whose RNG is
    # stateful and must be fresh per cell — is installed after the clone.
    # A whole-suite fault profile (REPRO_FAULT_PROFILE) attaches a plane at
    # creation, which a clone cannot share, so that mode rebuilds per cell.
    base = RingNetwork.create(n_peers, domain=domain, seed=seed + 1)
    base.load_data(dataset.values)
    base.reset_stats()
    reusable = base.faults is None
    truth = empirical_cdf(base.all_values(), presorted=True)
    grid = np.linspace(*domain, DEFAULTS.grid_points)

    rows: list[dict[str, object]] = []
    for attempts in RETRY_ATTEMPTS:
        if reusable:
            network = clone_network(base)
        else:
            network = RingNetwork.create(n_peers, domain=domain, seed=seed + 1)
            network.load_data(dataset.values)
            network.reset_stats()
        _install_scenario(network, spec, seed=seed + 97)

        # Hard per-lookup hop budget, generous enough that a fault-free
        # lookup (~log2(N)/2 hops) never trips it; the cost ceiling below
        # is exact given the policy: per probe at most ``max_hops`` routed
        # transmissions plus one request/reply exchange per attempt.
        hop_budget = 4 * network.space.bits
        policy = RetryPolicy(max_attempts=attempts).with_hop_budget(hop_budget)
        ceiling = probes * (hop_budget + 2 * attempts + 2)

        errors, coverages, messages = [], [], []
        for rep in range(repetitions):
            estimate = DistributionFreeEstimator(probes=probes, retry=policy).estimate(
                network, rng=np.random.default_rng(seed * 31 + rep)
            )
            errors.append(ks_distance(estimate.cdf, truth, grid))
            coverages.append(estimate.coverage)
            messages.append(estimate.messages)
        mean_messages = float(np.mean(messages))
        rows.append(
            dict(
                scenario=scenario,
                retry_attempts=attempts,
                coverage=float(np.mean(coverages)),
                ks=float(np.mean(errors)),
                messages=mean_messages,
                within_budget=float(max(messages) <= ceiling),
            )
        )
    return rows


def run(scale: float = 1.0, seed: int = 0, workers: int = 1) -> ResultTable:
    """Sweep fault scenarios against bounded retry budgets."""
    table = ResultTable(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        expectation=EXPECTATION,
        columns=[
            "scenario",
            "retry_attempts",
            "coverage",
            "ks",
            "messages",
            "within_budget",
        ],
    )
    n_peers = scale_int(512, scale, minimum=32)
    n_items = scale_int(50_000, scale, minimum=2_000)
    repetitions = scale_int(DEFAULTS.repetitions, scale, minimum=2)

    tasks = [
        (scenario, spec, n_peers, n_items, repetitions, seed)
        for scenario, spec in SCENARIOS
    ]
    for rows in parallel_map(_run_scenario_block, tasks, workers=workers):
        for row in rows:
            table.add_row(**row)
    return table
