"""Terminal (ASCII) charts for experiment series.

The repository is offline-first (no matplotlib); these renderers turn a
:class:`~repro.experiments.results.ResultTable` series into a fixed-width
scatter/line chart that reads well in a terminal or a code block —
``repro-experiments F1 --plot ks`` appends one chart per grouping column
under each printed table.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.experiments.results import ResultTable, _format_cell

__all__ = ["ascii_chart", "chart_table"]

_MARKERS = "ox+*#@%&"


def ascii_chart(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 64,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
    log_x: bool = False,
) -> str:
    """Render named (x, y) series on one ASCII canvas.

    Each series gets a distinct marker; axes are annotated with the data
    ranges.  ``log_x`` spaces the x axis logarithmically (parameter sweeps
    are usually geometric).
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 16 or height < 4:
        raise ValueError("canvas too small to be legible")

    def x_transform(value: float) -> float:
        if log_x:
            if value <= 0:
                raise ValueError("log_x requires positive x values")
            return math.log10(value)
        return value

    all_x = [x_transform(float(x)) for xs, _ in series.values() for x in xs]
    all_y = [float(y) for _, ys in series.values() for y in ys]
    if not all_x:
        raise ValueError("series contain no points")
    x_min, x_max = min(all_x), max(all_x)
    y_min, y_max = min(all_y), max(all_y)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    canvas = [[" "] * width for _ in range(height)]
    for index, (name, (xs, ys)) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in zip(xs, ys):
            col = int((x_transform(float(x)) - x_min) / x_span * (width - 1))
            row = int((float(y) - y_min) / y_span * (height - 1))
            canvas[height - 1 - row][col] = marker

    lines = []
    for row_index, row in enumerate(canvas):
        if row_index == 0:
            label = _format_cell(y_max)
        elif row_index == height - 1:
            label = _format_cell(y_min)
        else:
            label = ""
        lines.append(f"{label:>10} |" + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    x_left = _format_cell(10**x_min if log_x else x_min)
    x_right = _format_cell(10**x_max if log_x else x_max)
    axis_note = f"{x_label} (log)" if log_x else x_label
    lines.append(
        " " * 12 + x_left + " " * max(width - len(x_left) - len(x_right), 1) + x_right
    )
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(f"{'':>12}{axis_note} vs {y_label}:  {legend}")
    return "\n".join(lines)


def chart_table(
    table: ResultTable,
    y: str,
    x: Optional[str] = None,
    group_by: Optional[str] = None,
    log_x: Optional[bool] = None,
    width: int = 64,
    height: int = 16,
) -> str:
    """Chart one metric of a result table, grouped into series.

    ``x`` defaults to the first numeric non-metric column; ``group_by`` to
    the first string column (e.g. ``method``).  ``log_x`` defaults to
    auto-detection: geometric-looking sweeps are plotted on a log axis.
    """
    if y not in table.columns:
        raise KeyError(f"no column {y!r} in {list(table.columns)}")
    if x is None:
        x = next(
            (
                c
                for c in table.columns
                if c != y and table.rows and isinstance(table.rows[0][c], (int, float))
            ),
            None,
        )
    if x is None:
        raise ValueError("no numeric x column available")
    if group_by is None:
        group_by = next(
            (
                c
                for c in table.columns
                if table.rows and isinstance(table.rows[0][c], str)
            ),
            None,
        )
    groups = sorted({row[group_by] for row in table.rows}) if group_by else [None]
    series = {}
    for group in groups:
        where = {group_by: group} if group_by else None
        xs, ys = table.series(x, y, where=where)
        if xs.size:
            series[str(group) if group is not None else y] = (xs, ys)

    if log_x is None:
        xs_all = np.unique(np.concatenate([np.asarray(s[0]) for s in series.values()]))
        log_x = bool(
            xs_all.size >= 3 and np.all(xs_all > 0) and xs_all[-1] / max(xs_all[0], 1e-12) >= 16
        )
    return ascii_chart(series, width=width, height=height, x_label=x, y_label=y, log_x=log_x)
