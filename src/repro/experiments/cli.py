"""Command-line entry point: ``repro-experiments``.

Run one experiment or the whole evaluation suite and print the result
tables.  ``--scale`` shrinks network/data/repetition sizes proportionally
(the benchmark harness uses small scales; ``--scale 1.0`` reproduces the
full evaluation).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Optional, Sequence

from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.ring.faults import FAULT_PROFILE_ENV, FAULT_PROFILES

__all__ = ["main"]


def _run_timed(task: tuple[str, float, int, int]) -> tuple:
    """Run one experiment and time it (top-level so it pickles for fan-out)."""
    experiment_id, scale, seed, workers = task
    started = time.perf_counter()  # repro-lint: disable=RNG002 (wall_s instrumentation; timing is reported, never fed into results)
    table = run_experiment(experiment_id, scale=scale, seed=seed, workers=workers)
    return table, time.perf_counter() - started  # repro-lint: disable=RNG002 (wall_s instrumentation; timing is reported, never fed into results)


def _run_selection(
    ids: Sequence[str], scale: float, seed: int, workers: int
) -> list[tuple]:
    """(table, elapsed) per id — experiments fan across processes when
    several ids were selected, otherwise ``workers`` flows into the single
    experiment's own fixture-block fan-out.  Output order always matches
    ``ids``; tables are identical for any worker count."""
    from repro.experiments.common import parallel_map

    if workers > 1 and len(ids) > 1:
        tasks = [(experiment_id, scale, seed, 1) for experiment_id in ids]
        return parallel_map(_run_timed, tasks, workers=workers)
    return [_run_timed((experiment_id, scale, seed, workers)) for experiment_id in ids]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's evaluation tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help=f"experiment ids to run (default: all of {', '.join(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="proportional size factor for networks/data/repetitions (default 1.0)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base random seed")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes: with several ids, whole experiments run in "
            "parallel; with one id, its independent fixture blocks do "
            "(results are identical for any N; default 1)"
        ),
    )
    parser.add_argument(
        "--faults",
        metavar="PROFILE",
        default=None,
        help=(
            "run every experiment under a named fault profile "
            f"({', '.join(FAULT_PROFILES)}): each created network gets a "
            "fault plane attached (exported via the environment so worker "
            "processes inherit it); estimates degrade gracefully instead "
            "of failing"
        ),
    )
    parser.add_argument(
        "--profile",
        nargs="?",
        type=int,
        const=25,
        default=None,
        metavar="N",
        help=(
            "wrap the whole run in cProfile and print the top N functions "
            "by cumulative time afterwards (default 25), so the next "
            "performance floor is measured rather than guessed; forces "
            "--workers 1 (the profiler sees only its own process)"
        ),
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    parser.add_argument(
        "--report",
        metavar="DIR",
        default=None,
        help="also write results as Markdown into this directory",
    )
    parser.add_argument(
        "--plot",
        metavar="METRIC",
        default=None,
        help="append an ASCII chart of this metric (e.g. ks) under each table",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    try:
        return _main(argv)
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe — not an error.
        return 0


def _main(argv: Optional[Sequence[str]]) -> int:
    """The CLI body (separated so pipe closure is handled in one place)."""
    args = _build_parser().parse_args(argv)
    if args.list:
        for key in EXPERIMENTS:
            print(key)
        return 0
    ids = [e.upper() for e in args.experiments] or list(EXPERIMENTS)
    unknown = [e for e in ids if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {unknown}", file=sys.stderr)
        return 2
    if args.faults is not None:
        if args.faults not in FAULT_PROFILES:
            print(
                f"unknown fault profile {args.faults!r}; "
                f"known: {sorted(FAULT_PROFILES)}",
                file=sys.stderr,
            )
            return 2
        # Exported (not passed) so experiment code and worker subprocesses
        # pick the profile up inside RingNetwork.create without every
        # runner needing a parameter.
        os.environ[FAULT_PROFILE_ENV] = args.faults
    if args.profile is not None and args.profile < 1:
        print("--profile wants a positive row count", file=sys.stderr)
        return 2
    profiler = None
    workers = args.workers
    if args.profile is not None:
        import cProfile

        # Subprocess work is invisible to an in-process profiler, so a
        # profiled run keeps everything in this interpreter.
        workers = 1
        profiler = cProfile.Profile()
        profiler.enable()
    tables = []
    for experiment_id, (table, elapsed) in zip(
        ids, _run_selection(ids, args.scale, args.seed, workers)
    ):
        print(table.to_text())
        if args.plot and args.plot in table.columns:
            from repro.experiments.plotting import chart_table

            try:
                print()
                print(chart_table(table, args.plot))
            except (KeyError, ValueError) as exc:
                print(f"[no chart for {experiment_id}: {exc}]")
        print(f"[{experiment_id} finished in {elapsed:.1f}s]\n")
        tables.append(table)
    if profiler is not None:
        import io
        import pstats

        profiler.disable()
        stream = io.StringIO()
        pstats.Stats(profiler, stream=stream).sort_stats("cumulative").print_stats(
            args.profile
        )
        print(f"[cProfile: top {args.profile} by cumulative time]")
        print(stream.getvalue().rstrip())
    if args.report:
        from repro.experiments.reporting import write_report

        index = write_report(tables, args.report)
        print(f"report written to {index}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
