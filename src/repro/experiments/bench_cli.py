"""Command-line entry point: ``repro-bench``.

Times a selection of experiments (by default the churn-heavy trio
F6/F11/F12 that the snapshot plane targets) and records the perf
trajectory as JSON: per-bench wall-clock medians, machine info, and the
git sha.  With ``--baseline`` pointing at a previously committed file,
the run fails when any shared bench regressed by more than the threshold
— the CI smoke check against the repository's committed trajectory.

Besides the registry experiments, three ids run wall-clock benchmarks
that the registry's bit-identity contract forbids: ``S1``, the serving
benchmark (:func:`repro.serve.bench.run_serving_bench`); ``E1``, the
scale benchmark (:func:`repro.experiments.scale_bench.run_scale_bench` —
million-peer compact-ring throughput plus event-engine storm throughput);
and ``E2``, the scale-estimation benchmark
(:func:`repro.experiments.estimation_bench.run_estimation_bench` — the
full estimator stack answering from a million-peer compact ring's
columnar synopsis plane, with F1-at-scale KS accuracy).
Their entries carry the full metrics document under ``"metrics"``
alongside the usual ``median_s``, so the regression check applies to them
unchanged.

The payload stamps the commit the numbers were taken at: ``git_sha`` is
resolved at bench time (not imported from anywhere it could go stale) and
``dirty`` records whether the working tree had uncommitted changes — a
trajectory file whose ``dirty`` is true describes a tree that no single
sha reproduces.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from typing import Callable, Optional, Sequence

from repro.experiments.estimation_bench import ESTIMATION_BENCH_ID, run_estimation_bench
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.scale_bench import SCALE_BENCH_ID, run_scale_bench
from repro.serve.bench import SERVING_BENCH_ID, run_serving_bench

__all__ = ["main", "build_payload", "check_regression", "time_serving_bench"]

DEFAULT_BENCHES = ("F6", "F11", "F12")
DEFAULT_THRESHOLD = 0.25

#: Non-registry benches keyed by id: wall-clock benchmarks (serving QPS,
#: scale throughput) whose metrics ride along under ``"metrics"``.
EXTRA_BENCHES: dict[str, Callable[..., dict[str, float]]] = {
    SERVING_BENCH_ID: run_serving_bench,
    SCALE_BENCH_ID: run_scale_bench,
    ESTIMATION_BENCH_ID: run_estimation_bench,
}

#: Backwards-compatible alias (same dict object) from when S1 was the only
#: non-registry bench.
SERVING_BENCHES = EXTRA_BENCHES


def _git_sha() -> Optional[str]:
    """The current commit sha, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except OSError:
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def _git_dirty() -> Optional[bool]:
    """Whether the working tree differs from HEAD (``None`` outside git).

    A bench taken on a dirty tree measures code no commit contains; the
    flag makes such trajectory files self-describing instead of silently
    attributing the numbers to the stamped sha.
    """
    try:
        out = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except OSError:
        return None
    if out.returncode != 0:
        return None
    return bool(out.stdout.strip())


def machine_info() -> dict[str, object]:
    """Hardware/interpreter context the timings were taken on."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def time_experiment(
    experiment_id: str,
    scale: float,
    seed: int,
    repetitions: int,
    runner: Callable[..., object] = run_experiment,
    warmup: int = 1,
) -> dict[str, object]:
    """Median wall time (seconds) over ``repetitions`` runs of one bench.

    ``warmup`` untimed runs absorb one-time costs (lazy imports, numpy
    dispatch caches) so the recorded medians compare steady-state work.
    """
    for _ in range(warmup):
        runner(experiment_id, scale=scale, seed=seed)
    runs: list[float] = []
    for _ in range(repetitions):
        started = time.perf_counter()  # repro-lint: disable=RNG002 (wall_s instrumentation; timing is reported, never fed into results)
        runner(experiment_id, scale=scale, seed=seed)
        runs.append(time.perf_counter() - started)  # repro-lint: disable=RNG002 (wall_s instrumentation; timing is reported, never fed into results)
    ordered = sorted(runs)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        median = ordered[mid]
    else:
        median = (ordered[mid - 1] + ordered[mid]) / 2.0
    return {"median_s": median, "runs_s": runs}


def time_serving_bench(
    bench_id: str, scale: float, seed: int, repetitions: int
) -> dict[str, object]:
    """Median wall time of a non-registry bench plus its last run's metrics.

    Timing goes through :func:`time_experiment` (same warmup and median
    protocol as the registry benches); the metrics document of the final
    timed run — QPS, latency percentiles, peers/sec, bytes/peer — rides
    along under ``"metrics"``.  Every run's logical content is identical
    (it is a function of ``(seed, scale)``), so "the last run" is not a
    choice that matters beyond the wall-clock fields.
    """
    bench = EXTRA_BENCHES[bench_id]
    metrics: dict[str, float] = {}

    def runner(_bench_id: str, scale: float, seed: int) -> None:
        metrics.clear()
        metrics.update(bench(scale=scale, seed=seed))

    result = time_experiment(bench_id, scale, seed, repetitions, runner=runner)
    result["metrics"] = metrics
    return result


def build_payload(
    benches: dict[str, dict[str, object]], scale: float, seed: int, repetitions: int
) -> dict[str, object]:
    """The JSON document ``repro-bench --json`` writes."""
    return {
        "schema": 1,
        "git_sha": _git_sha(),
        "dirty": _git_dirty(),
        "machine": machine_info(),
        "scale": scale,
        "seed": seed,
        "repetitions": repetitions,
        "benches": benches,
    }


def check_regression(
    current: dict[str, object],
    baseline: dict[str, object],
    threshold: float = DEFAULT_THRESHOLD,
) -> list[str]:
    """Benches slower than ``baseline`` by more than ``threshold``.

    Only benches present in both documents are compared, and only when
    the runs used the same scale — medians at different scales measure
    different work.  Returns human-readable failure lines (empty = pass).
    """
    if current.get("scale") != baseline.get("scale"):
        return []
    failures = []
    current_benches = current.get("benches", {})
    for name, base in baseline.get("benches", {}).items():
        now = current_benches.get(name)
        if now is None:
            continue
        base_median = float(base["median_s"])
        now_median = float(now["median_s"])
        if base_median <= 0:
            continue
        ratio = now_median / base_median
        if ratio > 1.0 + threshold:
            failures.append(
                f"{name}: {now_median:.3f}s vs baseline {base_median:.3f}s "
                f"({(ratio - 1.0) * 100.0:.0f}% slower, threshold {threshold * 100.0:.0f}%)"
            )
    return failures


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Time experiments and persist the perf trajectory as JSON.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help=f"experiment ids to bench (default: {', '.join(DEFAULT_BENCHES)})",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the trajectory JSON here (e.g. BENCH_PR2.json)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        action="append",
        default=None,
        help=(
            "previously committed trajectory to compare against; the run "
            "fails on regression beyond --threshold (missing file = skip). "
            "Repeatable: every given baseline must hold, so benchmarks won "
            "in an older PR stay won even after a newer baseline is added"
        ),
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed slowdown fraction vs the baseline (default 0.25)",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0, help="experiment scale factor (default 1.0)"
    )
    parser.add_argument("--seed", type=int, default=0, help="base random seed")
    parser.add_argument(
        "--repetitions",
        type=int,
        default=3,
        help="timed runs per bench; the median is recorded (default 3)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    ids = [e.upper() for e in args.experiments] or list(DEFAULT_BENCHES)
    unknown = [e for e in ids if e not in EXPERIMENTS and e not in EXTRA_BENCHES]
    if unknown:
        print(f"unknown experiment ids: {unknown}", file=sys.stderr)
        return 2
    if args.repetitions < 1:
        print("--repetitions must be >= 1", file=sys.stderr)
        return 2

    benches: dict[str, dict[str, object]] = {}
    for experiment_id in ids:
        if experiment_id in EXTRA_BENCHES:
            result = time_serving_bench(
                experiment_id, args.scale, args.seed, args.repetitions
            )
            metrics = result["metrics"]
            assert isinstance(metrics, dict)
            if experiment_id == SERVING_BENCH_ID:
                print(
                    f"{experiment_id}: median {result['median_s']:.3f}s over "
                    f"{args.repetitions} runs — speedup {metrics['speedup']:.1f}x, "
                    f"p50 {metrics['p50_ms']:.3f}ms, p99 {metrics['p99_ms']:.3f}ms, "
                    f"hit rate {metrics['hit_rate']:.2f}, "
                    f"slo_met {int(metrics['slo_met'])}"
                )
            elif experiment_id == SCALE_BENCH_ID:
                print(
                    f"{experiment_id}: median {result['median_s']:.3f}s over "
                    f"{args.repetitions} runs — "
                    f"{metrics['peers_per_s']:,.0f} peers/s, "
                    f"{metrics['bytes_per_peer']:.1f} B/peer, "
                    f"{metrics['events_per_s']:,.0f} events/s, "
                    f"max queue {metrics['max_queue_depth']:.0f}"
                )
            elif experiment_id == ESTIMATION_BENCH_ID:
                print(
                    f"{experiment_id}: median {result['median_s']:.3f}s over "
                    f"{args.repetitions} runs — "
                    f"{metrics['items_per_s']:,.0f} items/s loaded, "
                    f"{metrics['bytes_per_peer']:.1f} B/peer "
                    f"({metrics['synopsis_bytes_per_peer']:.1f} synopsis), "
                    f"estimate {metrics['estimate_s'] * 1000.0:.1f}ms at "
                    f"s={metrics['probes']:.0f}, "
                    f"KS {metrics['ks_256']:.4f}"
                )
            else:  # pragma: no cover - no fourth extra bench yet
                print(
                    f"{experiment_id}: median {result['median_s']:.3f}s over "
                    f"{args.repetitions} runs"
                )
        else:
            result = time_experiment(
                experiment_id, args.scale, args.seed, args.repetitions
            )
            print(
                f"{experiment_id}: median {result['median_s']:.3f}s "
                f"over {args.repetitions} runs"
            )
        benches[experiment_id] = result
    payload = build_payload(benches, args.scale, args.seed, args.repetitions)

    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"trajectory written to {args.json}")

    exit_code = 0
    for baseline_path in args.baseline or ():
        if not os.path.exists(baseline_path):
            print(f"baseline {baseline_path} not found; skipping regression check")
            continue
        with open(baseline_path, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        if payload.get("scale") != baseline.get("scale"):
            print(
                f"baseline scale {baseline.get('scale')} != current scale "
                f"{payload.get('scale')}; skipping regression check"
            )
            continue
        failures = check_regression(payload, baseline, args.threshold)
        if failures:
            for line in failures:
                print(f"REGRESSION vs {baseline_path}: {line}", file=sys.stderr)
            exit_code = 1
        else:
            print(f"no regression vs {baseline_path}")
    return exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
