"""E2 — the scale-estimation benchmark: full estimator stack at N=10^6.

E1 proved the compact backend can *hold* a million-peer ring; E2 proves
the estimation pipeline can *answer* from it.  One run builds a
``compact=True`` ring at N=10^6, loads a seeded dataset through
:meth:`~repro.ring.compact.CompactRing.load_counts` (which bins every
value into the columnar synopsis plane in the same pass that assigns it
an owner), and then measures the three costs the synopsis plane was
built to pay down:

* **probe latency** — wall time of a 256-probe batch answered entirely
  from the synopsis matrix (plus mean routing hops, the simulated cost);
* **memory** — post-load ``bytes_per_peer`` with the synopsis plane
  itemized separately, off ``memory_report()``;
* **end-to-end estimate** — wall time of a full
  :class:`~repro.core.estimator.DistributionFreeEstimator` pass and of an
  :class:`~repro.serve.service.EstimationService` refresh.

The accuracy half is F1-at-scale: KS error against the empirical CDF of
the loaded dataset at probe budgets 64 and 256, the paper's central
accuracy metric evaluated at a network three orders of magnitude larger
than F1's default fixture.

Like S1/E1 this is not a registry experiment: wall-clock reads are
instrumentation — reported, never fed back into any simulated result —
so the logical content of a run remains a pure function of
``(seed, scale)``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.cdf import empirical_cdf
from repro.core.estimator import DistributionFreeEstimator
from repro.core.metrics import ks_distance
from repro.data.workload import build_dataset
from repro.experiments.common import scale_int
from repro.ring.network import RingNetwork
from repro.serve.service import EstimationService

__all__ = ["run_estimation_bench", "ESTIMATION_BENCH_ID"]

ESTIMATION_BENCH_ID = "E2"

#: Workload shape at ``scale=1.0`` (the acceptance configuration: the
#: F1-class accuracy run at a million peers and two million items).
FULL_PEERS = 1_000_000
FULL_ITEMS = 2_000_000
DISTRIBUTION = "normal"
PROBES_LOW = 64
PROBES_HIGH = 256
GRID_POINTS = 512


def run_estimation_bench(scale: float = 1.0, seed: int = 0) -> dict[str, float]:
    """Run the scale-estimation benchmark; returns a flat metrics document.

    Every metric is a float so the document drops straight into the
    ``repro-bench`` trajectory JSON next to the timing fields.
    """
    n_peers = scale_int(FULL_PEERS, scale, minimum=10_000)
    n_items = scale_int(FULL_ITEMS, scale, minimum=20_000)

    dataset = build_dataset(DISTRIBUTION, n_items, seed=seed)
    domain = dataset.distribution.domain.as_tuple()

    started = time.perf_counter()  # repro-lint: disable=RNG002 (build_s instrumentation; reported, never fed into results)
    ring = RingNetwork.create(n_peers, seed=seed + 1, domain=domain, compact=True)
    build_s = time.perf_counter() - started  # repro-lint: disable=RNG002 (build_s instrumentation; reported, never fed into results)

    started = time.perf_counter()  # repro-lint: disable=RNG002 (load throughput instrumentation; reported, never fed into results)
    ring.load_counts(dataset.values)
    load_s = time.perf_counter() - started  # repro-lint: disable=RNG002 (load throughput instrumentation; reported, never fed into results)

    report = ring.memory_report()

    # Probe latency: one cold batch (summaries materialized from the
    # matrix) timed on a clean ledger, so mean hops comes off the batch.
    ring.stats.reset()
    estimator_high = DistributionFreeEstimator(probes=PROBES_HIGH)
    started = time.perf_counter()  # repro-lint: disable=RNG002 (probe latency instrumentation; reported, never fed into results)
    estimate_high = estimator_high.estimate(ring, rng=np.random.default_rng(seed + 2))
    estimate_s = time.perf_counter() - started  # repro-lint: disable=RNG002 (probe latency instrumentation; reported, never fed into results)

    estimator_low = DistributionFreeEstimator(probes=PROBES_LOW)
    estimate_low = estimator_low.estimate(ring, rng=np.random.default_rng(seed + 3))

    # F1-at-scale accuracy: KS against the empirical CDF of the values the
    # ring actually stores, on the standard metric grid.
    truth = empirical_cdf(dataset.values)
    grid = np.linspace(domain[0], domain[1], GRID_POINTS)
    ks_high = ks_distance(estimate_high.cdf, truth, grid)
    ks_low = ks_distance(estimate_low.cdf, truth, grid)

    # Serving refresh: the end-to-end wall time a cache rebuild costs.
    service = EstimationService(ring, rng=np.random.default_rng(seed + 4))
    started = time.perf_counter()  # repro-lint: disable=RNG002 (refresh latency instrumentation; reported, never fed into results)
    service.refresh()
    refresh_s = time.perf_counter() - started  # repro-lint: disable=RNG002 (refresh latency instrumentation; reported, never fed into results)

    return {
        "peers": float(n_peers),
        "items": float(n_items),
        "build_s": build_s,
        "load_s": load_s,
        "items_per_s": n_items / load_s if load_s > 0 else 0.0,
        "bytes_per_peer": float(report["bytes_per_peer"]),
        "synopsis_bytes_per_peer": float(report["synopsis_bytes"]) / n_peers,
        "synopsis_buckets": float(report["synopsis_buckets"]),
        "probes": float(PROBES_HIGH),
        "estimate_s": estimate_s,
        "probes_per_s": PROBES_HIGH / estimate_s if estimate_s > 0 else 0.0,
        "mean_hops": estimate_high.hops / PROBES_HIGH,
        "messages": float(estimate_high.messages),
        "ks_64": ks_low,
        "ks_256": ks_high,
        "n_items_hat": float(estimate_high.n_items),
        "n_peers_hat": float(estimate_high.n_peers),
        "refresh_s": refresh_s,
    }
