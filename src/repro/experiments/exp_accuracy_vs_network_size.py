"""F2 — estimation accuracy vs. network size at a fixed probe budget.

The scalability claim: because the estimator samples a *fixed number* of
ring positions, its accuracy depends on the probe budget and the data
shape, not on how many peers the ring has — only the per-probe routing
cost grows (logarithmically).
"""

from __future__ import annotations

from repro.core.adaptive import AdaptiveDensityEstimator
from repro.core.estimator import DistributionFreeEstimator
from repro.experiments.common import measure_estimator, parallel_map, scale_int, scale_list
from repro.experiments.config import DEFAULTS, setup_network
from repro.experiments.results import ResultTable

EXPERIMENT_ID = "F2"
TITLE = "Accuracy vs. network size (fixed probe budget)"
EXPECTATION = (
    "KS error stays flat as N grows 32x while per-estimate hops grow only "
    "logarithmically; accuracy is governed by s, not N."
)

NETWORK_SIZES = [128, 256, 512, 1024, 2048, 4096]
DISTRIBUTIONS = ("normal", "mixture")


def _run_size_cell(
    task: tuple[str, int, int, int, int, int],
) -> list[dict[str, object]]:
    """Both methods at one (distribution, N) cell; self-contained for fan-out."""
    distribution, n_peers, n_items, repetitions, probes, seed = task
    fixture = setup_network(distribution, n_peers=n_peers, n_items=n_items, seed=seed)
    rows: list[dict[str, object]] = []
    for method, estimator in (
        ("dfde", DistributionFreeEstimator(probes=probes)),
        ("adaptive", AdaptiveDensityEstimator(probes=probes)),
    ):
        run_stats = measure_estimator(fixture, estimator, repetitions, seed)
        rows.append(
            dict(
                distribution=distribution,
                method=method,
                n_peers=n_peers,
                probes=probes,
                ks=run_stats["ks"],
                l1=run_stats["l1"],
                hops=run_stats["hops"],
            )
        )
    return rows


def run(scale: float = 1.0, seed: int = 0, workers: int = 1) -> ResultTable:
    """Sweep N with s fixed at the default budget."""
    table = ResultTable(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        expectation=EXPECTATION,
        columns=["distribution", "method", "n_peers", "probes", "ks", "l1", "hops"],
    )
    n_items = scale_int(DEFAULTS.n_items, scale, minimum=2_000)
    repetitions = scale_int(DEFAULTS.repetitions, scale, minimum=2)
    probes = DEFAULTS.probes
    sizes = scale_list(NETWORK_SIZES, min(scale, 1.0), minimum=16)

    tasks = [
        (distribution, n_peers, n_items, repetitions, probes, seed)
        for distribution in DISTRIBUTIONS
        for n_peers in sizes
    ]
    for rows in parallel_map(_run_size_cell, tasks, workers=workers):
        for row in rows:
            table.add_row(**row)
    return table
