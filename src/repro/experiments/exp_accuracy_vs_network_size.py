"""F2 — estimation accuracy vs. network size at a fixed probe budget.

The scalability claim: because the estimator samples a *fixed number* of
ring positions, its accuracy depends on the probe budget and the data
shape, not on how many peers the ring has — only the per-probe routing
cost grows (logarithmically).
"""

from __future__ import annotations

from repro.core.adaptive import AdaptiveDensityEstimator
from repro.core.estimator import DistributionFreeEstimator
from repro.experiments.common import measure_estimator, scale_int, scale_list
from repro.experiments.config import DEFAULTS, setup_network
from repro.experiments.results import ResultTable

EXPERIMENT_ID = "F2"
TITLE = "Accuracy vs. network size (fixed probe budget)"
EXPECTATION = (
    "KS error stays flat as N grows 32x while per-estimate hops grow only "
    "logarithmically; accuracy is governed by s, not N."
)

NETWORK_SIZES = [128, 256, 512, 1024, 2048, 4096]
DISTRIBUTIONS = ("normal", "mixture")


def run(scale: float = 1.0, seed: int = 0) -> ResultTable:
    """Sweep N with s fixed at the default budget."""
    table = ResultTable(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        expectation=EXPECTATION,
        columns=["distribution", "method", "n_peers", "probes", "ks", "l1", "hops"],
    )
    n_items = scale_int(DEFAULTS.n_items, scale, minimum=2_000)
    repetitions = scale_int(DEFAULTS.repetitions, scale, minimum=2)
    probes = DEFAULTS.probes
    sizes = scale_list(NETWORK_SIZES, min(scale, 1.0), minimum=16)

    for distribution in DISTRIBUTIONS:
        for n_peers in sizes:
            fixture = setup_network(
                distribution, n_peers=n_peers, n_items=n_items, seed=seed
            )
            for method, estimator in (
                ("dfde", DistributionFreeEstimator(probes=probes)),
                ("adaptive", AdaptiveDensityEstimator(probes=probes)),
            ):
                run_stats = measure_estimator(fixture, estimator, repetitions, seed)
                table.add_row(
                    distribution=distribution,
                    method=method,
                    n_peers=n_peers,
                    probes=probes,
                    ks=run_stats["ks"],
                    l1=run_stats["l1"],
                    hops=run_stats["hops"],
                )
    return table
