"""F17 — pollution attacks and the density-trimming defense.

A fraction of peers lies in probe replies (count inflated 100×, claimed
mass parked at an attacker-chosen value).  Measured: how far the trusting
estimator is dragged, how completely density trimming restores accuracy,
and what the defense costs when there is no attack (trimming can discard
honest heavy hitters on skewed data).
"""

from __future__ import annotations

import numpy as np

from repro.core.adaptive import AdaptiveDensityEstimator
from repro.core.byzantine import ByzantineBehavior, corrupt_network
from repro.core.cdf import empirical_cdf
from repro.core.estimator import DistributionFreeEstimator
from repro.core.metrics import ks_distance
from repro.data.workload import build_dataset
from repro.experiments.common import scale_int
from repro.experiments.config import DEFAULTS
from repro.experiments.results import ResultTable
from repro.ring.network import RingNetwork

EXPERIMENT_ID = "F17"
TITLE = "Pollution attacks vs. density trimming"
EXPECTATION = (
    "Trusting everything, even 5% liars with 100x inflation wreck the "
    "estimate. Neighbourhood density trimming restores near-clean "
    "accuracy on smooth data at any tested liar fraction.  On heavy skew "
    "the one-shot estimator cannot tell an honest head from an isolated "
    "liar (trim hurts); adaptive+trim resolves it — refinement probes "
    "verify suspicious regions, so honest heavy hitters gain dense "
    "neighbourhoods and liars stay isolated — holding near-clean "
    "accuracy through ~10% liars."
)

LIAR_FRACTIONS = (0.0, 0.05, 0.10, 0.20)
DISTRIBUTIONS = ("normal", "zipf")
ATTACK_VALUE = 0.9
#: Default neighbourhood-density trim threshold for the defended cells.
#: A reply denser than this multiple of its ring-neighbourhood median is
#: discarded; 20× sits far above honest normal/zipf density variation yet
#: far below the 100× pollution attack the sweep injects.
TRIM_DENSITY_RATIO = 20.0


def run(
    scale: float = 1.0, seed: int = 0, trim_ratio: float = TRIM_DENSITY_RATIO
) -> ResultTable:
    """Sweep the liar fraction for trusting vs. trimming estimators.

    ``trim_ratio`` sets the density-trim threshold used by the defended
    estimators.  It is validated here (and again by the estimator
    constructors) before any network work starts, so a bad sweep
    configuration fails fast.
    """
    if trim_ratio <= 1.0:
        raise ValueError(f"trim_ratio must be > 1, got {trim_ratio}")
    table = ResultTable(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        expectation=EXPECTATION,
        columns=["distribution", "liar_fraction", "defense", "ks"],
    )
    n_peers = scale_int(512, scale, minimum=32)
    n_items = scale_int(DEFAULTS.n_items, scale, minimum=2_000)
    repetitions = scale_int(DEFAULTS.repetitions, scale, minimum=2)
    probes = DEFAULTS.probes

    for distribution in DISTRIBUTIONS:
        dataset = build_dataset(distribution, n_items, seed=seed)
        domain = dataset.distribution.domain.as_tuple()
        attack_value = domain[0] + ATTACK_VALUE * (domain[1] - domain[0])
        behavior = ByzantineBehavior(count_multiplier=100.0, fake_mass_at=attack_value)
        for fraction in LIAR_FRACTIONS:
            network = RingNetwork.create(n_peers, domain=domain, seed=seed + 1)
            network.load_data(dataset.values)
            network.reset_stats()
            corrupt_network(
                network, fraction, behavior, rng=np.random.default_rng(seed + 41)
            )
            # Truth is the honest data — the lie only exists in replies.
            truth = empirical_cdf(network.all_values(), presorted=True)
            grid = np.linspace(*domain, DEFAULTS.grid_points)
            for defense, estimator in (
                ("none", DistributionFreeEstimator(probes=probes)),
                (
                    f"trim-{trim_ratio:g}x",
                    DistributionFreeEstimator(
                        probes=probes, trim_density_ratio=trim_ratio
                    ),
                ),
                (
                    "adaptive+trim",
                    AdaptiveDensityEstimator(
                        probes=probes, trim_density_ratio=trim_ratio
                    ),
                ),
            ):
                errors = [
                    ks_distance(
                        estimator.estimate(
                            network, rng=np.random.default_rng(seed * 37 + rep)
                        ).cdf,
                        truth,
                        grid,
                    )
                    for rep in range(repetitions)
                ]
                table.add_row(
                    distribution=distribution,
                    liar_fraction=fraction,
                    defense=defense,
                    ks=float(np.mean(errors)),
                )
    return table
