"""F12 — replication vs. data loss under crash churn.

Pure crash churn (no graceful leaves) destroys data in the base model.
Successor-list replication bounds the loss to the staleness window of the
replica snapshots.  Swept: replication factor; reported: surviving data
fraction, estimation accuracy against the *original* dataset (what an
application ultimately cares about), and the replication message overhead.
"""

from __future__ import annotations

import numpy as np

from repro.core.estimator import DistributionFreeEstimator
from repro.core.metrics import ks_distance
from repro.experiments.common import scale_int
from repro.experiments.config import DEFAULTS, setup_network
from repro.experiments.results import ResultTable
from repro.ring.churn import ChurnConfig, ChurnProcess
from repro.ring.messages import MessageType
from repro.ring.replication import ReplicationManager

EXPERIMENT_ID = "F12"
TITLE = "Replication vs. data loss under crash churn"
EXPECTATION = (
    "Without replication, sustained crash churn destroys a large data "
    "fraction and the estimate tracks only the survivors; factor >= 3 "
    "keeps losses to the replication staleness window (a few percent) at "
    "Theta(N x factor) messages per replication round."
)

FACTORS = (1, 2, 3, 5)
ROUNDS = 15


def run(scale: float = 1.0, seed: int = 0) -> ResultTable:
    """Sweep the replication factor under pure crash churn."""
    table = ResultTable(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        expectation=EXPECTATION,
        columns=[
            "factor",
            "data_survived",
            "items_recovered",
            "ks_vs_original",
            "replication_messages",
        ],
    )
    n_peers = scale_int(256, scale, minimum=24)
    n_items = scale_int(40_000, scale, minimum=2_000)
    rounds = scale_int(ROUNDS, min(scale, 1.0), minimum=5)

    for factor in FACTORS:
        fixture = setup_network("mixture", n_peers=n_peers, n_items=n_items, seed=seed)
        network = fixture.network
        original_truth = fixture.truth
        manager = ReplicationManager(network, factor=factor) if factor > 1 else None
        network.reset_stats()
        process = ChurnProcess(
            network,
            ChurnConfig(
                join_rate=0.04, leave_rate=0.04, crash_fraction=1.0, min_peers=16
            ),
            rng=np.random.default_rng(seed + 13),
            replication=manager,
        )
        report = process.run(rounds)
        replication_messages = network.stats.count_of(MessageType.DATA_TRANSFER)
        estimate = DistributionFreeEstimator(probes=DEFAULTS.probes).estimate(
            network, rng=np.random.default_rng(seed + 29)
        )
        grid = np.linspace(*network.domain, DEFAULTS.grid_points)
        table.add_row(
            factor=factor,
            data_survived=network.total_count / n_items,
            items_recovered=report.items_recovered,
            ks_vs_original=ks_distance(estimate.cdf, original_truth, grid),
            replication_messages=replication_messages,
        )
    return table
