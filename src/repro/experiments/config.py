"""Default experiment parameters (Table T1) and shared setup helpers.

Every experiment builds its world through :func:`setup_network` so that
the simulation defaults live in exactly one place — the
:class:`ExperimentDefaults` instance below, which is also what the T1
"parameters" table prints.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Optional

import numpy as np

from repro.core.cdf import PiecewiseCDF, empirical_cdf
from repro.data.distributions import Distribution, make_distribution
from repro.data.workload import Dataset, build_dataset
from repro.ring.network import RingNetwork

__all__ = ["ExperimentDefaults", "DEFAULTS", "NetworkFixture", "setup_network"]


@dataclass(frozen=True)
class ExperimentDefaults:
    """The simulation defaults every experiment starts from (Table T1)."""

    n_peers: int = 1024            # network size N
    n_items: int = 100_000         # global data volume n
    probes: int = 64               # probe budget s
    synopsis_buckets: int = 8      # per-reply histogram resolution B
    ring_bits: int = 64            # identifier space width m
    repetitions: int = 5           # seeds averaged per data point
    grid_points: int = 512         # metric evaluation grid
    default_distribution: str = "normal"
    zipf_alpha: float = 1.0        # skew of the "zipf" workload

    def rows(self) -> list[dict[str, object]]:
        """One row per parameter, for the T1 table."""
        return [
            {"parameter": f.name, "default": getattr(self, f.name)}
            for f in fields(self)
        ]


DEFAULTS = ExperimentDefaults()


@dataclass(frozen=True)
class NetworkFixture:
    """A ready-to-probe world: network, its data, and ground truth."""

    network: RingNetwork
    dataset: Dataset
    truth: PiecewiseCDF            # empirical CDF of the *stored* data
    distribution: Distribution

    @property
    def domain(self) -> tuple[float, float]:
        """The data domain."""
        return self.network.domain


def setup_network(
    distribution: str | Distribution = DEFAULTS.default_distribution,
    n_peers: int = DEFAULTS.n_peers,
    n_items: int = DEFAULTS.n_items,
    seed: int = 0,
    bits: int = DEFAULTS.ring_bits,
    rng: Optional[np.random.Generator] = None,
    **dist_params,
) -> NetworkFixture:
    """Build a stabilized, loaded network with a clean message ledger.

    The fixture's ``truth`` is the empirical CDF of the values actually
    stored, so measured errors are pure estimation error (no sampling
    noise from the dataset generation itself).
    """
    if isinstance(distribution, str):
        dist = make_distribution(distribution, **dist_params)
    else:
        if dist_params:
            raise ValueError("dist_params only apply when distribution is given by name")
        dist = distribution
    dataset = build_dataset(dist, n_items, seed=seed)
    network = RingNetwork.create(
        n_peers,
        bits=bits,
        domain=dist.domain.as_tuple(),
        seed=seed + 1,  # decorrelate peer placement from the data
        rng=rng,
    )
    network.load_data(dataset.values)
    network.reset_stats()
    truth = empirical_cdf(network.all_values(), presorted=True)
    return NetworkFixture(network=network, dataset=dataset, truth=truth, distribution=dist)
