"""F13 — estimation latency (critical-path rounds) vs. network size.

Message counts measure bandwidth; *latency* measures how long a client
waits.  Parallel probing finishes in one round-trip of the slowest probe
(O(log N)); the broadcast finishes in O(log N) tree levels; the successor
traversal and the random walk are fully sequential (Θ(N) and Θ(s·L));
gossip takes its round count.  This experiment sweeps N and reports each
method's critical path.
"""

from __future__ import annotations

import numpy as np

from repro.core.adaptive import AdaptiveDensityEstimator
from repro.core.baselines.gossip import PushSumHistogramEstimator
from repro.core.baselines.random_walk import RandomWalkEstimator
from repro.core.cdf_compute import ExactCdfEstimator
from repro.core.estimator import DistributionFreeEstimator
from repro.experiments.common import scale_int, scale_list
from repro.experiments.config import DEFAULTS, setup_network
from repro.experiments.results import ResultTable

EXPERIMENT_ID = "F13"
TITLE = "Estimation latency vs. network size"
EXPECTATION = (
    "dfde latency grows ~log N (one parallel probe wave); adaptive is "
    "~2x that (two waves); broadcast is O(log N) levels; the traversal "
    "is Theta(N) and the random walk Theta(s x walk_length), both flat "
    "in N but far above the parallel methods at every size."
)

NETWORK_SIZES = [128, 256, 512, 1024, 2048]


def run(scale: float = 1.0, seed: int = 0) -> ResultTable:
    """Measure latency_rounds for every method across network sizes."""
    table = ResultTable(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        expectation=EXPECTATION,
        columns=["n_peers", "method", "latency_rounds", "messages"],
    )
    n_items = scale_int(50_000, scale, minimum=2_000)
    sizes = scale_list(NETWORK_SIZES, min(scale, 1.0), minimum=16)
    probes = DEFAULTS.probes

    for n_peers in sizes:
        fixture = setup_network("normal", n_peers=n_peers, n_items=n_items, seed=seed)
        methods = (
            ("dfde", DistributionFreeEstimator(probes=probes)),
            ("adaptive", AdaptiveDensityEstimator(probes=probes)),
            ("random-walk", RandomWalkEstimator(probes=probes, walk_length=16)),
            ("exact-traversal", ExactCdfEstimator(strategy="traversal")),
            ("exact-broadcast", ExactCdfEstimator(strategy="broadcast")),
            ("gossip", PushSumHistogramEstimator(rounds=30)),
        )
        for method, estimator in methods:
            estimate = estimator.estimate(
                fixture.network, rng=np.random.default_rng(seed + n_peers)
            )
            table.add_row(
                n_peers=n_peers,
                method=method,
                latency_rounds=estimate.latency_rounds,
                messages=estimate.messages,
            )
    return table
