"""Registry mapping experiment ids to their runner functions."""

from __future__ import annotations

import inspect
from typing import Callable

from repro.experiments import (
    exp_ablations,
    exp_byzantine,
    exp_drift_tracking,
    exp_accuracy_vs_network_size,
    exp_accuracy_vs_samples,
    exp_accuracy_vs_skew,
    exp_accuracy_vs_volume,
    exp_churn,
    exp_congestion,
    exp_cost_accuracy,
    exp_cost_table,
    exp_fault_plane,
    exp_inversion_quality,
    exp_latency,
    exp_load_balance,
    exp_message_loss,
    exp_method_comparison,
    exp_placement,
    exp_replication,
    exp_robust_estimation,
    exp_selectivity,
    exp_virtual_nodes,
)
from repro.experiments.config import DEFAULTS
from repro.experiments.results import ResultTable

__all__ = ["EXPERIMENTS", "run_experiment", "run_all"]


def _run_t1(scale: float = 1.0, seed: int = 0) -> ResultTable:
    """T1: the default-parameter table (no simulation involved)."""
    table = ResultTable(
        experiment_id="T1",
        title="Default simulation parameters",
        expectation="The shared defaults every other experiment perturbs.",
        columns=["parameter", "default"],
    )
    for row in DEFAULTS.rows():
        table.add_row(**row)
    return table


EXPERIMENTS: dict[str, Callable[..., ResultTable]] = {
    "T1": _run_t1,
    "F1": exp_accuracy_vs_samples.run,
    "F2": exp_accuracy_vs_network_size.run,
    "F3": exp_accuracy_vs_skew.run,
    "F4": exp_method_comparison.run,
    "F5": exp_cost_accuracy.run,
    "F6": exp_churn.run,
    "F7": exp_inversion_quality.run,
    "T2": exp_cost_table.run,
    "F8": exp_selectivity.run,
    "F9": exp_load_balance.run,
    "F10": exp_accuracy_vs_volume.run,
    "F11": exp_drift_tracking.run,
    "F12": exp_replication.run,
    "F13": exp_latency.run,
    "F14": exp_placement.run,
    "F15": exp_message_loss.run,
    "F16": exp_virtual_nodes.run,
    "F17": exp_byzantine.run,
    "F18": exp_fault_plane.run,
    "F19": exp_congestion.run,
    "F20": exp_robust_estimation.run,
    "A1": exp_ablations.run_synopsis_ablation,
    "A2": exp_ablations.run_placement_ablation,
    "A3": exp_ablations.run_assembly_ablation,
    "A4": exp_ablations.run_synopsis_kind_ablation,
}


def _accepts_workers(runner: Callable[..., ResultTable]) -> bool:
    """Whether an experiment runner takes a ``workers`` keyword.

    Experiments opt in to intra-experiment fan-out by declaring the
    parameter; the contract (see ``parallel_map``) is that the table they
    return is bit-identical for every worker count.
    """
    return "workers" in inspect.signature(runner).parameters


def run_experiment(
    experiment_id: str, scale: float = 1.0, seed: int = 0, workers: int = 1
) -> ResultTable:
    """Run one experiment by id (case-insensitive).

    ``workers`` fans the experiment's independent fixture blocks across
    processes where the experiment supports it; runners that are inherently
    sequential (shared fixture, coupled RNG stream) ignore it and run
    serially.  Results are identical for any ``workers`` value.
    """
    key = experiment_id.upper()
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        )
    runner = EXPERIMENTS[key]
    if workers > 1 and _accepts_workers(runner):
        return runner(scale=scale, seed=seed, workers=workers)
    return runner(scale=scale, seed=seed)


def _run_entry(task: tuple[str, float, int]) -> ResultTable:
    """Top-level (picklable) adapter for fanning whole experiments out."""
    key, scale, seed = task
    return run_experiment(key, scale=scale, seed=seed)


def run_all(scale: float = 1.0, seed: int = 0, workers: int = 1) -> list[ResultTable]:
    """Run the full evaluation suite, in presentation order.

    With ``workers > 1`` whole experiments are distributed across worker
    processes — each experiment is seeded independently, so the list of
    tables is bit-identical to the serial run.
    """
    from repro.experiments.common import parallel_map

    tasks = [(key, scale, seed) for key in EXPERIMENTS]
    return parallel_map(_run_entry, tasks, workers=workers)
