"""E1 — the scale benchmark: million-peer rings and event throughput.

Exercises the two planes PR 7 added and reports the numbers that justify
them:

* **Compact plane** — build a ``compact=True`` ring at N=10^6 (peers/sec),
  place one data item per peer, run a full vectorized routing round and a
  short push-sum gossip campaign, and read ``bytes_per_peer`` off
  :meth:`~repro.ring.compact.CompactRing.memory_report`.  The hot peer's
  message count is the batch-side congestion statistic.
* **Event plane** — a concurrent lookup storm on an object-backed ring
  driven by the discrete-event engine (per-hop latency jitter plus a
  single-server service queue), reporting simulated-event throughput
  (events/sec) and the deepest queue observed at the hottest peer.

Like S1 this is not a registry experiment: peers/sec and events/sec are
wall-clock, which the registry's bit-identity contract forbids.  All
wall-clock reads here are instrumentation — they are reported, never fed
back into any simulated result, so the logical content of a run remains a
pure function of ``(seed, scale)``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.experiments.common import scale_int
from repro.ring.events import EventEngine, LatencyModel, ServiceModel, schedule_lookup
from repro.ring.network import RingNetwork

__all__ = ["run_scale_bench", "SCALE_BENCH_ID"]

SCALE_BENCH_ID = "E1"

#: Workload shape at ``scale=1.0`` (the acceptance configuration: a
#: million-peer compact ring plus a 4096-peer event storm).
FULL_PEERS = 1_000_000
FULL_LOOKUPS = 131_072
GOSSIP_ROUNDS = 3
STORM_PEERS = 4_096
STORM_LOOKUPS = 2_048
STORM_LATENCY = LatencyModel(base=1.0, jitter=0.5)
STORM_SERVICE = ServiceModel(service_time=0.25)


def run_scale_bench(scale: float = 1.0, seed: int = 0) -> dict[str, float]:
    """Run the scale benchmark; returns a flat metrics document.

    Every metric is a float so the document drops straight into the
    ``repro-bench`` trajectory JSON next to the timing fields.
    """
    n_peers = scale_int(FULL_PEERS, scale, minimum=10_000)
    lookups = scale_int(FULL_LOOKUPS, scale, minimum=4_096)

    started = time.perf_counter()  # repro-lint: disable=RNG002 (peers/sec instrumentation; reported, never fed into results)
    ring = RingNetwork.create(n_peers, seed=seed + 1, compact=True)
    build_s = time.perf_counter() - started  # repro-lint: disable=RNG002 (peers/sec instrumentation; reported, never fed into results)

    rng = np.random.default_rng(seed + 2)
    ring.load_counts(rng.random(n_peers))

    started = time.perf_counter()  # repro-lint: disable=RNG002 (lookups/sec instrumentation; reported, never fed into results)
    routing = ring.routing_round(lookups=lookups, rng=rng)
    route_s = time.perf_counter() - started  # repro-lint: disable=RNG002 (lookups/sec instrumentation; reported, never fed into results)

    started = time.perf_counter()  # repro-lint: disable=RNG002 (gossip throughput instrumentation; reported, never fed into results)
    gossip: dict[str, float] = {"max_rel_error": 0.0}
    for _ in range(GOSSIP_ROUNDS):
        gossip = ring.gossip_round(rng=rng)
    gossip_s = time.perf_counter() - started  # repro-lint: disable=RNG002 (gossip throughput instrumentation; reported, never fed into results)

    report = ring.memory_report()

    # Event-plane storm: latency jitter plus a service queue, so the run
    # exercises both the heap ordering and the per-peer backlog tracking.
    storm_peers = scale_int(STORM_PEERS, scale, minimum=256)
    storm_lookups = scale_int(STORM_LOOKUPS, scale, minimum=128)
    network = RingNetwork.create(storm_peers, seed=seed + 3)
    engine = EventEngine(
        network, seed=seed + 4, latency=STORM_LATENCY, service=STORM_SERVICE
    )
    storm_rng = np.random.default_rng(seed + 5)
    ids = network.peer_ids()
    entries = storm_rng.integers(0, len(ids), size=storm_lookups)
    keys = storm_rng.integers(0, network.space.size, size=storm_lookups, dtype=np.uint64)
    for i, (entry, key) in enumerate(zip(entries, keys)):
        schedule_lookup(engine, network.node(ids[int(entry)]), int(key), tag=i)
    started = time.perf_counter()  # repro-lint: disable=RNG002 (events/sec instrumentation; reported, never fed into results)
    engine.run()
    storm_s = time.perf_counter() - started  # repro-lint: disable=RNG002 (events/sec instrumentation; reported, never fed into results)

    return {
        "peers": float(n_peers),
        "build_s": build_s,
        "peers_per_s": n_peers / build_s if build_s > 0 else 0.0,
        "bytes_per_peer": float(report["bytes_per_peer"]),
        "scan_width": float(report["scan_width"]),
        "route_lookups": float(lookups),
        "route_s": route_s,
        "lookups_per_s": lookups / route_s if route_s > 0 else 0.0,
        "mean_hops": float(routing["mean_hops"]),
        "hot_peer_messages": float(routing["hot_peer_messages"]),
        "gossip_rounds": float(GOSSIP_ROUNDS),
        "gossip_s": gossip_s,
        "gossip_max_rel_error": float(gossip["max_rel_error"]),
        "storm_peers": float(storm_peers),
        "storm_lookups": float(storm_lookups),
        "storm_events": float(engine.events_processed),
        "events_per_s": engine.events_processed / storm_s if storm_s > 0 else 0.0,
        "max_queue_depth": float(engine.max_queue_depth),
        "hot_peer_index": float(routing["hot_peer_index"]),
    }
