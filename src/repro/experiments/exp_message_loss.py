"""F15 — robustness to message loss under the unbounded-retry policy.

Real deployments lose messages; the overlay retransmits on timeout.  This
experiment runs under the *legacy retry model* — ``RetryPolicy.UNBOUNDED``,
the default whenever no fault plane is active and no policy is passed:
every lost transmission is retried until it delivers.  Under that (and
only that) policy delivery is eventually reliable, so accuracy is
*unaffected* by the loss rate while cost inflates by the retransmission
factor ``1/(1-p)`` per link.  Bounded policies make the opposite trade —
capped cost, shed coverage — which is F18's subject.  Swept: loss
probability; reported: accuracy and the measured cost-inflation factor.
"""

from __future__ import annotations

import numpy as np

from repro.core.cdf import empirical_cdf
from repro.core.estimator import DistributionFreeEstimator
from repro.core.metrics import ks_distance
from repro.data.workload import build_dataset
from repro.experiments.common import scale_int
from repro.experiments.config import DEFAULTS
from repro.experiments.results import ResultTable
from repro.ring.faults import FaultPlane
from repro.ring.network import RingNetwork

EXPERIMENT_ID = "F15"
TITLE = "Robustness to message loss"
EXPECTATION = (
    "Under the unbounded-retry policy (the default with no fault plane: "
    "every loss is retransmitted until delivered) accuracy is flat in the "
    "loss rate; messages per estimate inflate by ~1/(1-p) per link — "
    "about 1.25x at 20% loss.  Bounded retry policies instead cap cost "
    "and shed coverage (see F18)."
)

LOSS_RATES = (0.0, 0.05, 0.10, 0.20, 0.30)


def run(scale: float = 1.0, seed: int = 0) -> ResultTable:
    """Sweep the per-message loss probability."""
    table = ResultTable(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        expectation=EXPECTATION,
        columns=["loss_rate", "ks", "messages", "cost_inflation"],
    )
    n_peers = scale_int(512, scale, minimum=32)
    n_items = scale_int(50_000, scale, minimum=2_000)
    repetitions = scale_int(DEFAULTS.repetitions, scale, minimum=2)
    probes = DEFAULTS.probes

    dataset = build_dataset("mixture", n_items, seed=seed)
    domain = dataset.distribution.domain.as_tuple()
    baseline_messages = None
    for loss_rate in LOSS_RATES:
        network = RingNetwork.create(n_peers, domain=domain, seed=seed + 1)
        if loss_rate > 0.0:
            if network.faults is None:
                network.install_faults(FaultPlane(seed=seed + 1, loss_rate=loss_rate))
            else:
                # A profile plane attached at create (--faults): keep its
                # structural faults, sweep only the base loss rate.
                network.faults.loss_rate = loss_rate
                network.loss_rate = loss_rate
        network.load_data(dataset.values)
        network.reset_stats()
        truth = empirical_cdf(network.all_values(), presorted=True)
        grid = np.linspace(*domain, DEFAULTS.grid_points)

        errors, messages = [], []
        for rep in range(repetitions):
            estimate = DistributionFreeEstimator(probes=probes).estimate(
                network, rng=np.random.default_rng(seed * 31 + rep)
            )
            errors.append(ks_distance(estimate.cdf, truth, grid))
            messages.append(estimate.messages)
        mean_messages = float(np.mean(messages))
        if baseline_messages is None:
            baseline_messages = mean_messages
        table.add_row(
            loss_rate=loss_rate,
            ks=float(np.mean(errors)),
            messages=mean_messages,
            cost_inflation=mean_messages / baseline_messages,
        )
    return table
