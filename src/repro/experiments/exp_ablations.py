"""A1–A3 — ablations of the design choices DESIGN.md calls out.

* A1: synopsis resolution ``B`` (probe-reply size vs. within-segment detail)
* A2: probe placement (iid uniform vs. stratified)
* A3: CDF assembly (interpolated reconstruction vs. HT mixture; linear vs.
  log gap interpolation; linear vs. step local CDFs)
"""

from __future__ import annotations

from repro.core.estimator import DistributionFreeEstimator
from repro.experiments.common import measure_estimator, scale_int
from repro.experiments.config import DEFAULTS, setup_network
from repro.experiments.results import ResultTable

__all__ = [
    "run_synopsis_ablation",
    "run_placement_ablation",
    "run_assembly_ablation",
    "run_synopsis_kind_ablation",
]

BUCKET_SWEEP = [1, 2, 4, 8, 16, 32]
DISTRIBUTIONS = ("normal", "zipf")


def _fixture_pair(scale: float, seed: int):
    """The two workloads all three ablations are run on."""
    n_peers = scale_int(DEFAULTS.n_peers, scale, minimum=32)
    n_items = scale_int(DEFAULTS.n_items, scale, minimum=2_000)
    return {
        name: setup_network(name, n_peers=n_peers, n_items=n_items, seed=seed)
        for name in DISTRIBUTIONS
    }


def run_synopsis_ablation(scale: float = 1.0, seed: int = 0) -> ResultTable:
    """A1: sweep the per-reply histogram resolution ``B``.

    Two regimes: *sparse* (the default probe budget, s ≪ N) and *census*
    (every peer's synopsis collected), because B's role differs sharply
    between them.
    """
    table = ResultTable(
        experiment_id="A1",
        title="Synopsis resolution ablation",
        expectation=(
            "In the sparse-probe regime, synopsis resolution is second-"
            "order: probe variance dominates, so error is nearly flat in B "
            "(on smooth data small B is even slightly better — coarse "
            "edge densities make smoother gap interpolation). In the "
            "census regime, B is the *only* error source and error falls "
            "steadily as B grows."
        ),
        columns=["distribution", "regime", "buckets", "ks", "l1"],
    )
    repetitions = scale_int(DEFAULTS.repetitions, scale, minimum=2)
    grid_points = DEFAULTS.grid_points
    for name, fixture in _fixture_pair(scale, seed).items():
        for buckets in BUCKET_SWEEP:
            estimator = DistributionFreeEstimator(
                probes=DEFAULTS.probes, synopsis_buckets=buckets
            )
            run_stats = measure_estimator(fixture, estimator, repetitions, seed)
            table.add_row(
                distribution=name,
                regime="sparse",
                buckets=buckets,
                ks=run_stats["ks"],
                l1=run_stats["l1"],
            )
        for buckets in BUCKET_SWEEP:
            report = _census_error(fixture, buckets, grid_points)
            table.add_row(
                distribution=name,
                regime="census",
                buckets=buckets,
                ks=report.ks,
                l1=report.l1,
            )
    return table


def _census_error(fixture, buckets: int, grid_points: int):
    """Synopsis-only error: every peer summarised, exact count weights."""
    from repro.core.cdf_sampling import assemble_cdf_interpolated
    from repro.core.metrics import evaluate_estimate
    from repro.core.synopsis import summarize_peer

    summaries = [
        summarize_peer(fixture.network, node, buckets)
        for node in fixture.network.peers()
    ]
    reconstruction = assemble_cdf_interpolated(summaries, fixture.domain)
    return evaluate_estimate(
        reconstruction.cdf, fixture.truth, fixture.domain, grid_points
    )


def run_synopsis_kind_ablation(scale: float = 1.0, seed: int = 0) -> ResultTable:
    """A4: equi-width vs equi-depth probe synopses (a negative result).

    Equi-depth buckets sound strictly better (resolution follows the local
    data) but measured end-to-end they are not: the interpolated assembly
    leans on *edge densities* for gap masses, and quantile edges make the
    outermost buckets the widest/sparsest ones, coarsening exactly the
    signal the gap interpolation needs.  We keep the feature (it is the
    standard alternative and the comparison is informative) and document
    the finding.
    """
    table = ResultTable(
        experiment_id="A4",
        title="Synopsis kind ablation (equi-width vs equi-depth)",
        expectation=(
            "Equi-depth synopses are at best on par with equi-width at "
            "equal payload and slightly worse where gap interpolation "
            "dominates — a negative result worth knowing: the assembly's "
            "edge-density estimates want uniform (narrow) edge buckets."
        ),
        columns=["distribution", "synopsis_kind", "ks", "l1"],
    )
    repetitions = scale_int(DEFAULTS.repetitions, scale, minimum=2)
    from repro.core.adaptive import AdaptiveDensityEstimator

    for name, fixture in _fixture_pair(scale, seed).items():
        for kind in ("equi-width", "equi-depth"):
            estimator = AdaptiveDensityEstimator(
                probes=DEFAULTS.probes, synopsis_kind=kind
            )
            run_stats = measure_estimator(fixture, estimator, repetitions, seed)
            table.add_row(
                distribution=name,
                synopsis_kind=kind,
                ks=run_stats["ks"],
                l1=run_stats["l1"],
            )
    return table


def run_placement_ablation(scale: float = 1.0, seed: int = 0) -> ResultTable:
    """A2: iid uniform vs. stratified probe placement."""
    table = ResultTable(
        experiment_id="A2",
        title="Probe placement ablation",
        expectation=(
            "Stratified placement is never worse than iid uniform and "
            "reduces error noticeably at small probe budgets (variance "
            "reduction with identical unbiasedness)."
        ),
        columns=["distribution", "placement", "probes", "ks", "l1"],
    )
    repetitions = scale_int(DEFAULTS.repetitions, scale, minimum=2)
    for name, fixture in _fixture_pair(scale, seed).items():
        for probes in (16, 64):
            for placement in ("uniform", "stratified"):
                estimator = DistributionFreeEstimator(probes=probes, placement=placement)
                run_stats = measure_estimator(fixture, estimator, repetitions, seed)
                table.add_row(
                    distribution=name,
                    placement=placement,
                    probes=probes,
                    ks=run_stats["ks"],
                    l1=run_stats["l1"],
                )
    return table


def run_assembly_ablation(scale: float = 1.0, seed: int = 0) -> ResultTable:
    """A3: how probe evidence becomes a CDF."""
    table = ResultTable(
        experiment_id="A3",
        title="CDF assembly ablation",
        expectation=(
            "Interpolated reconstruction beats the HT mixture severalfold "
            "at equal budget (it does not assume zero mass off the probed "
            "segments); log vs. linear gap interpolation is a wash except "
            "on heavy tails; step local CDFs are slightly worse than "
            "linear."
        ),
        columns=["distribution", "variant", "ks", "l1"],
    )
    repetitions = scale_int(DEFAULTS.repetitions, scale, minimum=2)
    variants = (
        ("interpolate-linear", DistributionFreeEstimator(probes=DEFAULTS.probes)),
        (
            "interpolate-log",
            DistributionFreeEstimator(probes=DEFAULTS.probes, gap_interpolation="log"),
        ),
        (
            "mixture-linear",
            DistributionFreeEstimator(probes=DEFAULTS.probes, combine="mixture"),
        ),
        (
            "mixture-step",
            DistributionFreeEstimator(
                probes=DEFAULTS.probes, combine="mixture", interpolation="step"
            ),
        ),
    )
    for name, fixture in _fixture_pair(scale, seed).items():
        for variant, estimator in variants:
            run_stats = measure_estimator(fixture, estimator, repetitions, seed)
            table.add_row(
                distribution=name, variant=variant, ks=run_stats["ks"], l1=run_stats["l1"]
            )
    return table
