"""Experiment harness: one module per evaluation table/figure.

``repro.experiments.registry`` maps experiment ids (T1, F1-F10, T2,
A1-A3) to runner functions; each returns a
:class:`~repro.experiments.results.ResultTable` whose rows are the
series/values the corresponding paper figure reports.  The
``repro-experiments`` CLI and the ``benchmarks/`` harness are thin
wrappers over this package.
"""

from repro.experiments.config import DEFAULTS, ExperimentDefaults, NetworkFixture, setup_network
from repro.experiments.results import ResultTable

__all__ = [
    "DEFAULTS",
    "ExperimentDefaults",
    "NetworkFixture",
    "ResultTable",
    "setup_network",
]
