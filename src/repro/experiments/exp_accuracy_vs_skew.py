"""F3 — robustness to data skew (and the Horvitz–Thompson ablation).

Sweep the zipf skew parameter and compare the paper's estimators against
naive (unweighted) peer sampling.  Naive pooling is exactly the
distribution-free estimator with its bias correction removed, so this
experiment doubles as the HT-correction ablation called out in DESIGN.md.
"""

from __future__ import annotations

from repro.core.adaptive import AdaptiveDensityEstimator
from repro.core.baselines.naive import NaivePeerSamplingEstimator
from repro.core.estimator import DistributionFreeEstimator
from repro.experiments.common import measure_estimator, scale_int
from repro.experiments.config import DEFAULTS, setup_network
from repro.experiments.results import ResultTable

EXPERIMENT_ID = "F3"
TITLE = "Accuracy vs. data skew (zipf alpha sweep)"
EXPECTATION = (
    "Naive pooling degrades steeply with skew and does not recover with "
    "more probes (bias); dfde degrades gracefully (variance only); "
    "adaptive stays nearly flat across the whole sweep."
)

ALPHA_SWEEP = [0.2, 0.4, 0.6, 0.8, 1.0, 1.2]


def run(scale: float = 1.0, seed: int = 0) -> ResultTable:
    """Sweep zipf ``alpha`` for the three estimators."""
    table = ResultTable(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        expectation=EXPECTATION,
        columns=["alpha", "method", "probes", "ks", "l1"],
    )
    n_peers = scale_int(DEFAULTS.n_peers, scale, minimum=32)
    n_items = scale_int(DEFAULTS.n_items, scale, minimum=2_000)
    repetitions = scale_int(DEFAULTS.repetitions, scale, minimum=2)
    probes = DEFAULTS.probes

    for alpha in ALPHA_SWEEP:
        fixture = setup_network(
            "zipf", n_peers=n_peers, n_items=n_items, seed=seed, alpha=alpha
        )
        for method, estimator in (
            ("naive", NaivePeerSamplingEstimator(probes=probes)),
            ("dfde", DistributionFreeEstimator(probes=probes)),
            ("adaptive", AdaptiveDensityEstimator(probes=probes)),
        ):
            run_stats = measure_estimator(fixture, estimator, repetitions, seed)
            table.add_row(
                alpha=alpha,
                method=method,
                probes=probes,
                ks=run_stats["ks"],
                l1=run_stats["l1"],
            )
    return table
