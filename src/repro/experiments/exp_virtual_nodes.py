"""F16 — virtual nodes: load balance vs. estimation cost.

Chord's classic remedy for load imbalance is running ``v`` virtual nodes
per physical host: host load becomes a sum of ``v`` independent segment
loads, cutting its relative variance like ``1/v``.  The estimation side
effect is a ``v×`` larger ring (more hops per probe) with *more uniform*
per-node loads (which mildly helps the one-shot estimator).  Swept:
``v``; reported: host-level Gini, estimation accuracy, hops per estimate.
"""

from __future__ import annotations

import numpy as np

from repro.apps.load_balance import gini_coefficient
from repro.core.adaptive import AdaptiveDensityEstimator
from repro.core.cdf import empirical_cdf
from repro.core.estimator import DistributionFreeEstimator
from repro.core.metrics import ks_distance
from repro.data.workload import build_dataset
from repro.experiments.common import scale_int
from repro.experiments.config import DEFAULTS
from repro.experiments.results import ResultTable
from repro.ring.network import RingNetwork

EXPERIMENT_ID = "F16"
TITLE = "Virtual nodes: host load balance vs. estimation cost"
EXPECTATION = (
    "On uniform data, host Gini collapses with v (load ~ total segment "
    "length, variance ~1/v) — the classic virtual-node win.  On zipf data "
    "it falls only mildly: virtual nodes fix *placement* imbalance, not "
    "*data* skew (whichever host owns the head gets the load; fixing that "
    "needs the estimate-driven equi-depth re-placement of F14).  At fixed "
    "s, one-shot error grows with the v-times-larger ring while adaptive "
    "stays flat; hops grow ~log v."
)

VIRTUAL_SWEEP = (1, 2, 4, 8, 16)
N_HOSTS = 128
DISTRIBUTIONS = ("uniform", "zipf")


def run(scale: float = 1.0, seed: int = 0) -> ResultTable:
    """Sweep virtual nodes per host on a skewed workload."""
    table = ResultTable(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        expectation=EXPECTATION,
        columns=[
            "distribution",
            "virtual_per_host",
            "host_gini",
            "ks_dfde",
            "ks_adaptive",
            "hops",
        ],
    )
    n_hosts = scale_int(N_HOSTS, scale, minimum=16)
    n_items = scale_int(DEFAULTS.n_items, scale, minimum=2_000)
    repetitions = scale_int(DEFAULTS.repetitions, scale, minimum=2)
    probes = DEFAULTS.probes

    for distribution in DISTRIBUTIONS:
        dataset = build_dataset(distribution, n_items, seed=seed)
        domain = dataset.distribution.domain.as_tuple()
        run_sweep(table, dataset, domain, n_hosts, repetitions, probes, seed)
    return table


def run_sweep(table, dataset, domain, n_hosts, repetitions, probes, seed):
    """One distribution's sweep over the virtual-node counts."""
    for virtual in VIRTUAL_SWEEP:
        network = RingNetwork.create_virtual(
            n_hosts, virtual, domain=domain, seed=seed + 1
        )
        network.load_data(dataset.values)
        network.reset_stats()
        truth = empirical_cdf(network.all_values(), presorted=True)
        grid = np.linspace(*domain, DEFAULTS.grid_points)
        host_loads = np.asarray(list(network.host_loads().values()), dtype=float)

        def mean_ks(estimator):
            return float(np.mean([
                ks_distance(
                    estimator.estimate(
                        network, rng=np.random.default_rng(seed * 23 + rep)
                    ).cdf,
                    truth,
                    grid,
                )
                for rep in range(repetitions)
            ]))

        hops = []
        for rep in range(repetitions):
            estimate = DistributionFreeEstimator(probes=probes).estimate(
                network, rng=np.random.default_rng(seed * 29 + rep)
            )
            hops.append(estimate.hops)
        table.add_row(
            distribution=dataset.distribution.name,
            virtual_per_host=virtual,
            host_gini=gini_coefficient(host_loads),
            ks_dfde=mean_ks(DistributionFreeEstimator(probes=probes)),
            ks_adaptive=mean_ks(AdaptiveDensityEstimator(probes=probes)),
            hops=float(np.mean(hops)),
        )
