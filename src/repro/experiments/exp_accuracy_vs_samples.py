"""F1 — estimation accuracy vs. probe count, per distribution.

The paper's central accuracy figure: as the probe budget ``s`` grows, the
distribution-free estimate converges to the true global distribution at
the Monte-Carlo rate, on *every* distribution shape.
"""

from __future__ import annotations

from repro.core.adaptive import AdaptiveDensityEstimator
from repro.core.estimator import DistributionFreeEstimator
from repro.data.distributions import DISTRIBUTION_NAMES
from repro.experiments.common import measure_estimator, parallel_map, scale_int, scale_list
from repro.experiments.config import DEFAULTS, setup_network
from repro.experiments.results import ResultTable

EXPERIMENT_ID = "F1"
TITLE = "Accuracy vs. probe count"
EXPECTATION = (
    "KS error decays ~O(1/sqrt(s)) for the one-shot estimator on every "
    "distribution; the adaptive variant is uniformly at or below it, with "
    "the largest gap on the zipf workload."
)

PROBE_SWEEP = [8, 16, 32, 64, 128, 256]


def _run_distribution_block(
    task: tuple[str, int, int, int, tuple[int, ...], int],
) -> list[dict[str, object]]:
    """All rows for one distribution: a self-contained unit of parallelism.

    Builds its own fixture and derives every generator from the explicit
    seed, so blocks are independent and the table is bit-identical whether
    they run serially or fanned across worker processes.
    """
    distribution, n_peers, n_items, repetitions, probe_sweep, seed = task
    fixture = setup_network(distribution, n_peers=n_peers, n_items=n_items, seed=seed)
    rows: list[dict[str, object]] = []
    for probes in probe_sweep:
        for method, estimator in (
            ("dfde", DistributionFreeEstimator(probes=probes)),
            ("adaptive", AdaptiveDensityEstimator(probes=max(probes, 2))),
        ):
            run_stats = measure_estimator(fixture, estimator, repetitions, seed)
            rows.append(
                dict(
                    distribution=distribution,
                    method=method,
                    probes=probes,
                    ks=run_stats["ks"],
                    ks_std=run_stats["ks_std"],
                    l1=run_stats["l1"],
                    messages=run_stats["messages"],
                )
            )
    return rows


def run(scale: float = 1.0, seed: int = 0, workers: int = 1) -> ResultTable:
    """Sweep probe counts over the full distribution zoo."""
    table = ResultTable(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        expectation=EXPECTATION,
        columns=["distribution", "method", "probes", "ks", "ks_std", "l1", "messages"],
    )
    n_peers = scale_int(DEFAULTS.n_peers, scale, minimum=32)
    n_items = scale_int(DEFAULTS.n_items, scale, minimum=2_000)
    repetitions = scale_int(DEFAULTS.repetitions, scale, minimum=2)
    probe_sweep = tuple(scale_list(PROBE_SWEEP, min(scale, 1.0), minimum=4))

    tasks = [
        (distribution, n_peers, n_items, repetitions, probe_sweep, seed)
        for distribution in DISTRIBUTION_NAMES
    ]
    for rows in parallel_map(_run_distribution_block, tasks, workers=workers):
        for row in rows:
            table.add_row(**row)
    return table
