"""F7 — quality of inversion-method random variates.

Two ways the pipeline generates "random samples for any arbitrary
distribution": free model sampling from the estimated CDF, and exact rank
sampling against the live network.  Model samples inherit the estimate's
error (KS plateaus at the estimation floor as the sample grows); rank
samples are true draws from the stored data (KS keeps shrinking at the
1/sqrt(k) empirical rate) but cost O(log N) hops each.
"""

from __future__ import annotations

import numpy as np

from repro.core.adaptive import AdaptiveDensityEstimator
from repro.core.metrics import ks_distance_to_samples
from repro.core.rank_sampling import build_prefix_index, sample_by_rank
from repro.experiments.common import scale_int, scale_list
from repro.experiments.config import DEFAULTS, setup_network
from repro.experiments.results import ResultTable

EXPERIMENT_ID = "F7"
TITLE = "Inversion-sample quality (model vs. exact rank sampling)"
EXPECTATION = (
    "Exact rank samples track the 1/sqrt(k) empirical-CDF rate "
    "indefinitely; model samples follow the same curve until they hit the "
    "density estimate's own error floor, at zero per-sample network cost."
)

SAMPLE_SIZES = [100, 400, 1600, 6400]
DISTRIBUTION = "mixture"


def run(scale: float = 1.0, seed: int = 0) -> ResultTable:
    """Compare sample quality and per-sample cost of both modes."""
    table = ResultTable(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        expectation=EXPECTATION,
        columns=["mode", "samples", "ks_vs_truth", "network_messages"],
    )
    n_peers = scale_int(512, scale, minimum=24)
    n_items = scale_int(50_000, scale, minimum=2_000)
    fixture = setup_network(DISTRIBUTION, n_peers=n_peers, n_items=n_items, seed=seed)
    network = fixture.network
    rng = np.random.default_rng(seed + 5)

    estimate = AdaptiveDensityEstimator(probes=DEFAULTS.probes).estimate(network, rng=rng)
    index_before = network.stats.snapshot()
    index = build_prefix_index(network)
    index_cost = index_before.delta(network.stats.snapshot()).messages

    for samples in scale_list(SAMPLE_SIZES, min(scale, 1.0), minimum=50):
        model_draws = estimate.sample(samples, rng=rng)
        table.add_row(
            mode="model",
            samples=samples,
            ks_vs_truth=ks_distance_to_samples(fixture.truth, model_draws),
            network_messages=0,
        )
        before = network.stats.snapshot()
        exact_draws = sample_by_rank(network, index, samples, rng=rng)
        cost = before.delta(network.stats.snapshot()).messages
        table.add_row(
            mode="exact-rank",
            samples=samples,
            ks_vs_truth=ks_distance_to_samples(fixture.truth, exact_draws),
            network_messages=cost,
        )
    table.add_row(
        mode="index-build",
        samples=0,
        ks_vs_truth=0.0,
        network_messages=index_cost,
    )
    return table
