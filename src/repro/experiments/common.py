"""Shared measurement helpers for the experiment modules."""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

import numpy as np

from repro.core.estimate import DensityEstimate
from repro.core.metrics import evaluate_estimate
from repro.experiments.config import DEFAULTS, NetworkFixture

__all__ = ["MeasuredRun", "measure_estimator", "parallel_map", "scale_int", "scale_list"]

_T = TypeVar("_T")
_R = TypeVar("_R")


class MeasuredRun(dict):
    """Mean accuracy/cost of an estimator over repetitions (a plain dict
    with the keys ``ks, ks_std, l1, l2, kl, messages, hops, n_items,
    n_peers, wall_s, wall_s_std``)."""


def measure_estimator(
    fixture: NetworkFixture,
    estimator,
    repetitions: int = DEFAULTS.repetitions,
    seed: int = 0,
    grid_points: int = DEFAULTS.grid_points,
) -> MeasuredRun:
    """Run an estimator ``repetitions`` times and average errors and cost.

    Each repetition gets an independent generator derived from ``seed``;
    the fixture's network state is untouched (estimation is read-only), so
    repeats measure pure sampling variance.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    reports = []
    estimates: list[DensityEstimate] = []
    walls: list[float] = []
    for rep in range(repetitions):
        rng = np.random.default_rng(seed * 10_007 + rep)
        started = time.perf_counter()  # repro-lint: disable=RNG002 (wall_s instrumentation; timing is reported, never fed into results)
        estimate = estimator.estimate(fixture.network, rng=rng)
        walls.append(time.perf_counter() - started)  # repro-lint: disable=RNG002 (wall_s instrumentation; timing is reported, never fed into results)
        estimates.append(estimate)
        reports.append(
            evaluate_estimate(estimate.cdf, fixture.truth, fixture.domain, grid_points)
        )
    return MeasuredRun(
        ks=float(np.mean([r.ks for r in reports])),
        ks_std=float(np.std([r.ks for r in reports])),
        l1=float(np.mean([r.l1 for r in reports])),
        l2=float(np.mean([r.l2 for r in reports])),
        kl=float(np.mean([r.kl for r in reports])),
        messages=float(np.mean([e.messages for e in estimates])),
        hops=float(np.mean([e.hops for e in estimates])),
        n_items=float(np.mean([e.n_items for e in estimates])),
        n_peers=float(np.mean([e.n_peers for e in estimates])),
        wall_s=float(np.mean(walls)),
        wall_s_std=float(np.std(walls)),
    )


def parallel_map(
    fn: Callable[[_T], _R], items: Iterable[_T], workers: int = 1
) -> list[_R]:
    """Order-preserving map over ``items``, optionally fanned across processes.

    The unit of parallelism must be *self-contained*: ``fn`` is a top-level
    (picklable) function whose result depends only on its argument — it
    builds its own network fixtures and derives every generator from
    explicit seeds.  Under that contract the returned list is bit-identical
    for any ``workers`` value, including the serial fallback.

    Falls back to a plain loop when ``workers <= 1``, when there is at most
    one item, or when called from a daemon process (worker processes cannot
    spawn children of their own).
    """
    work: Sequence[_T] = list(items)
    if workers <= 1 or len(work) <= 1 or multiprocessing.current_process().daemon:
        return [fn(item) for item in work]
    with ProcessPoolExecutor(max_workers=min(workers, len(work))) as pool:
        return list(pool.map(fn, work))


def scale_int(value: int, scale: float, minimum: int = 1) -> int:
    """Scale an experiment size down (used by the bench harness)."""
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return max(int(round(value * scale)), minimum)


def scale_list(values: list[int], scale: float, minimum: int = 1) -> list[int]:
    """Scale a parameter sweep, dropping duplicates introduced by rounding."""
    scaled = []
    for value in values:
        v = scale_int(value, scale, minimum)
        if v not in scaled:
            scaled.append(v)
    return scaled
