"""F9 — load-balance analysis from density estimates.

The load-balancing application: predict global load imbalance (Gini,
coefficient of variation) and the hottest region of the ring purely from a
cheap density estimate, and compare with the actual per-peer loads.
"""

from __future__ import annotations

import numpy as np

from repro.apps.load_balance import analyze_load_balance
from repro.core.adaptive import AdaptiveDensityEstimator
from repro.experiments.common import scale_int
from repro.experiments.config import DEFAULTS, setup_network
from repro.experiments.results import ResultTable

EXPERIMENT_ID = "F9"
TITLE = "Load-balance prediction from density estimates"
EXPECTATION = (
    "Predicted Gini/CoV track the actual values within ~10-20% across "
    "workloads (skewed data -> high imbalance, uniform -> the baseline "
    "imbalance of random peer placement), and the predicted hotspot falls "
    "in the actual top decile in most runs."
)

DISTRIBUTIONS = ("uniform", "normal", "zipf", "mixture")


def run(scale: float = 1.0, seed: int = 0) -> ResultTable:
    """Predict vs. measure imbalance on each workload."""
    table = ResultTable(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        expectation=EXPECTATION,
        columns=[
            "distribution",
            "actual_gini",
            "predicted_gini",
            "actual_cv",
            "predicted_cv",
            "hotspot_hit_rate",
        ],
    )
    n_peers = scale_int(512, scale, minimum=32)
    n_items = scale_int(DEFAULTS.n_items, scale, minimum=2_000)
    repetitions = scale_int(DEFAULTS.repetitions, scale, minimum=2)
    estimator = AdaptiveDensityEstimator(probes=DEFAULTS.probes)

    for distribution in DISTRIBUTIONS:
        fixture = setup_network(distribution, n_peers=n_peers, n_items=n_items, seed=seed)
        reports = []
        for rep in range(repetitions):
            estimate = estimator.estimate(
                fixture.network, rng=np.random.default_rng(seed * 77 + rep)
            )
            reports.append(analyze_load_balance(fixture.network, estimate))
        table.add_row(
            distribution=distribution,
            actual_gini=reports[0].actual_gini,
            predicted_gini=float(np.mean([r.predicted_gini for r in reports])),
            actual_cv=reports[0].actual_cv,
            predicted_cv=float(np.mean([r.predicted_cv for r in reports])),
            hotspot_hit_rate=float(np.mean([r.hotspot_hit for r in reports])),
        )
    return table
