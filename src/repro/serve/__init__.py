"""repro.serve — the high-QPS estimation serving layer.

A long-lived façade (:class:`EstimationService`) that answers sustained
query traffic against a cached :class:`~repro.core.estimate.DensityEstimate`:
batched vectorized query APIs, a version-keyed result cache with
deterministic eviction, and an adaptive staleness-SLO refresh policy
driven by drift signals instead of a timer.  See ``docs/PERFORMANCE.md``
("Serving") for the architecture and knobs.
"""

from repro.serve.cache import CacheStats, EpochKey, VersionKeyedCache
from repro.serve.metrics import latency_summary, percentile_nearest_rank
from repro.serve.policy import AdaptiveRefreshPolicy, RefreshDecision, StalenessSLO
from repro.serve.service import EstimationService, ServingStats

__all__ = [
    "AdaptiveRefreshPolicy",
    "CacheStats",
    "EpochKey",
    "EstimationService",
    "RefreshDecision",
    "ServingStats",
    "StalenessSLO",
    "VersionKeyedCache",
    "latency_summary",
    "percentile_nearest_rank",
]
