"""Staleness-SLO refresh policy: re-estimate on evidence, not on a timer.

The naive serving policies are the same two extremes the tracking module
names for maintenance: never refresh (free, eventually wrong) and refresh
per query batch (always right, ruinously expensive).  The serving layer
instead promises an **accuracy SLO** — "the served estimate's error stays
within ``max_error``" — and spends network messages only when the
evidence says the promise is at risk:

1. While the network's version token has not moved since the estimate was
   built, the estimate is exact-fresh: serve, zero cost.
2. When the token has moved, *predict* the staleness error from the
   observed drift rate per version bump (an EWMA learned from past drift
   checks).  Below the SLO: keep serving the stale estimate — this is
   where refresh cost is amortized across queries.
3. Above the SLO (or with no rate learned yet): run a cheap drift check
   (``check_probes`` probes, the :func:`repro.core.tracking.drift_score_between`
   signal).  The measured score updates the rate; only a score above the
   refresh threshold triggers the full re-estimate.

Every decision is returned as a :class:`RefreshDecision` so the service
can account messages and actions per batch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Literal, Optional

__all__ = ["StalenessSLO", "RefreshDecision", "AdaptiveRefreshPolicy"]

#: What one pre-batch policy consultation concluded.
RefreshAction = Literal[
    "bootstrapped",    # no estimate yet: full estimate required
    "served_fresh",    # version token unchanged: estimate is exact
    "served_stale",    # token moved, predicted error within SLO
    "checked_kept",    # drift check ran, measured drift within threshold
    "refresh",         # drift check (or unknown rate) demanded a re-estimate
]


@dataclass(frozen=True)
class StalenessSLO:
    """The accuracy promise the serving layer maintains.

    Parameters
    ----------
    max_error:
        KS-style error bound (max absolute CDF discrepancy) the served
        estimate should stay within.  Must leave headroom above the
        estimator's own zero-staleness error (≈ ``O(1/sqrt(probes))``) or
        every drift check will demand a refresh.
    check_probes:
        Probe count of one drift check — the cheap network touch that
        stands between "predicted stale" and "full re-estimate".
    min_coverage:
        Refresh results with probe coverage below this are treated as
        failed refreshes: the service keeps serving the previous estimate
        (degraded fallthrough) rather than adopting a worse model.
    """

    max_error: float = 0.1
    check_probes: int = 16
    min_coverage: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.max_error <= 1.0:
            raise ValueError(f"max_error must be in (0, 1], got {self.max_error}")
        if self.check_probes < 1:
            raise ValueError(f"check_probes must be >= 1, got {self.check_probes}")
        if not 0.0 <= self.min_coverage <= 1.0:
            raise ValueError(
                f"min_coverage must be in [0, 1], got {self.min_coverage}"
            )


@dataclass(frozen=True)
class RefreshDecision:
    """One policy consultation: what to do and why."""

    action: RefreshAction
    predicted_error: float   # staleness error predicted before any probing
    bumps: int               # version bumps since the decision's base point


@dataclass
class AdaptiveRefreshPolicy:
    """Predicts staleness error from version-bump drift rates.

    The predictor is deliberately simple and conservative: staleness error
    is modelled as ``base_error + rate · bumps`` where ``bumps`` counts
    version-token increments since the last *measurement* (refresh or
    drift check), ``base_error`` is what that measurement established, and
    ``rate`` is an EWMA of observed drift-per-bump.  An unknown rate
    predicts infinity — the first staleness is always checked, never
    trusted.

    Parameters
    ----------
    slo:
        The accuracy promise (also carries the drift-check budget).
    ewma:
        Weight of the newest drift-rate observation (1.0 = always trust
        the latest check only).
    rate_floor:
        Lower bound on the learned rate, so a lucky near-zero drift check
        cannot switch prediction off permanently.
    """

    slo: StalenessSLO = field(default_factory=StalenessSLO)
    ewma: float = 0.5
    rate_floor: float = 1e-6
    _rate: Optional[float] = field(init=False, default=None)
    _base_error: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        if not 0.0 < self.ewma <= 1.0:
            raise ValueError(f"ewma must be in (0, 1], got {self.ewma}")
        if self.rate_floor < 0:
            raise ValueError(f"rate_floor must be >= 0, got {self.rate_floor}")

    @property
    def drift_rate(self) -> Optional[float]:
        """Learned drift per version bump (``None`` before any check)."""
        return self._rate

    def predicted_error(self, bumps: int) -> float:
        """Predicted staleness error after ``bumps`` version increments."""
        if bumps <= 0:
            return self._base_error
        if self._rate is None:
            return math.inf
        return self._base_error + self._rate * bumps

    def decide(self, bumps: int) -> RefreshDecision:
        """Serve stale, or escalate to a drift check?

        ``bumps`` counts version increments since the policy's base point
        (the last refresh or drift check).  Returns ``served_fresh`` /
        ``served_stale`` when no network touch is needed and ``refresh``
        when a drift check is warranted — the caller runs the check and
        reports its score through :meth:`observe_check`.
        """
        if bumps <= 0:
            return RefreshDecision("served_fresh", self._base_error, bumps)
        predicted = self.predicted_error(bumps)
        if predicted <= self.slo.max_error:
            return RefreshDecision("served_stale", predicted, bumps)
        return RefreshDecision("refresh", predicted, bumps)

    def observe_check(self, bumps: int, drift_score: float) -> bool:
        """Record one drift check; returns ``True`` when a refresh is due.

        The measured score re-bases the error model (the check is the
        freshest evidence of where the served estimate stands) and updates
        the drift rate.  A score above ``slo.max_error`` demands the full
        re-estimate.
        """
        if bumps > 0:
            observed_rate = max(drift_score / bumps, self.rate_floor)
            if self._rate is None:
                self._rate = observed_rate
            else:
                self._rate = (1.0 - self.ewma) * self._rate + self.ewma * observed_rate
        refresh = drift_score > self.slo.max_error
        if not refresh:
            # Kept: the measured discrepancy is the new staleness base.
            self._base_error = drift_score
        return refresh

    def observe_refresh(self) -> None:
        """Re-base after a successful full re-estimate (zero staleness)."""
        self._base_error = 0.0
