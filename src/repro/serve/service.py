"""The long-lived estimation service: cheap answers for heavy traffic.

The paper's promise is that one compact estimate ``F̂`` lets applications
answer selectivity, load-balance, sampling, and range-planning questions
*locally*; this module is the piece that actually serves that promise
under sustained load.  :class:`EstimationService` wraps a live network
and an estimator behind four **batched, vectorized** query entry points —
``cdf_batch``, ``quantile_batch``, ``selectivity_batch``,
``sample_batch`` — and keeps three invariants:

* **bit-identity** — a batched answer equals the per-query scalar answer
  element for element (the batch APIs evaluate the same piecewise-CDF
  arithmetic, vectorized);
* **version-keyed caching** — results are cached under
  ``(topology_version, data_version, estimate_epoch)`` plus the batch's
  content digest (:mod:`repro.serve.cache`), so repeated and overlapping
  batches cost a dictionary lookup;
* **staleness SLO** — the served estimate is refreshed when the adaptive
  policy (:mod:`repro.serve.policy`) predicts its error exceeds the SLO,
  not on a timer; failed or low-coverage refreshes fall through to the
  previous estimate (degraded mode) instead of serving garbage.

Every network touch (drift checks, refreshes) is accounted in
:class:`ServingStats`, so a serving run can report amortized refresh cost
next to its QPS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np
from numpy.typing import NDArray

from repro.core.backend import RingBackend
from repro.core.estimate import DensityEstimate
from repro.core.estimator import DensityEstimator, DistributionFreeEstimator
from repro.core.tracking import drift_score_between
from repro.ring.network import NetworkError
from repro.ring.routing import RoutingError
from repro.serve.cache import CacheStats, EpochKey, VersionKeyedCache
from repro.serve.policy import AdaptiveRefreshPolicy, RefreshDecision, StalenessSLO

__all__ = ["ServingStats", "EstimationService"]


@dataclass
class ServingStats:
    """What the service did: query volume, cache traffic, refresh spend."""

    batches: int = 0
    queries: int = 0
    bootstraps: int = 0
    refreshes: int = 0
    failed_refreshes: int = 0
    drift_checks: int = 0
    checks_kept: int = 0
    served_fresh: int = 0
    served_stale: int = 0
    served_while_failed: int = 0
    refresh_messages: int = 0
    check_messages: int = 0

    @property
    def maintenance_messages(self) -> int:
        """Total network messages spent keeping the estimate serviceable."""
        return self.refresh_messages + self.check_messages


class EstimationService:
    """Serve density-estimate queries against a live ring network.

    Parameters
    ----------
    network:
        The live ring the served estimate describes — either backend
        (:data:`~repro.core.backend.RingBackend`); a
        :class:`~repro.ring.compact.CompactRing` serves million-peer
        rings from its columnar synopsis plane.
    estimator:
        Builds (and rebuilds) the served estimate.  Defaults to the
        paper's distribution-free estimator.
    slo:
        The staleness/accuracy promise (see :class:`StalenessSLO`).
    cache_entries:
        Result-cache capacity (deterministic LRU eviction beyond it).
    synopsis_buckets:
        Histogram resolution of drift-check probe replies.
    rng:
        Randomness for drift checks and refreshes; seeded default so a
        service built without a generator replays identically.
    """

    def __init__(
        self,
        network: RingBackend,
        estimator: Optional[DensityEstimator] = None,
        slo: Optional[StalenessSLO] = None,
        cache_entries: int = 256,
        synopsis_buckets: int = 8,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.network = network
        self.estimator: DensityEstimator = (
            estimator if estimator is not None else DistributionFreeEstimator()
        )
        self.slo = slo if slo is not None else StalenessSLO()
        self.policy = AdaptiveRefreshPolicy(slo=self.slo)
        self.synopsis_buckets = synopsis_buckets
        # Seeded default: serving without an explicit generator must still
        # replay identically run to run.
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._cache = VersionKeyedCache(cache_entries)
        self.stats = ServingStats()
        self._current: Optional[DensityEstimate] = None
        self._epoch = 0
        self._epoch_key: EpochKey = (-1, -1, -1)
        # Version token the policy's bump counter is based at (last
        # refresh or kept drift check).
        self._base_token: Optional[tuple[int, int]] = None
        # Version token of the last *failed* refresh: while the network
        # has not moved past it, retrying would re-fail identically, so
        # the service keeps serving the previous estimate without
        # re-probing every batch.
        self._failed_token: Optional[tuple[int, int]] = None
        self.last_decision: Optional[RefreshDecision] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def current(self) -> Optional[DensityEstimate]:
        """The estimate currently served (``None`` before first use)."""
        return self._current

    @property
    def epoch_key(self) -> EpochKey:
        """``(topology_version, data_version, estimate_epoch)`` of the
        served estimate — the cache key prefix of every current result."""
        return self._epoch_key

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss/eviction counters of the result cache."""
        return self._cache.stats

    @property
    def degraded(self) -> bool:
        """Is the service in degraded mode (serving a degraded estimate,
        or serving across a failed refresh)?"""
        if self._current is None:
            return False
        if self._current.degraded:
            return True
        return self._failed_token is not None

    # ------------------------------------------------------------------
    # Refresh machinery
    # ------------------------------------------------------------------
    def refresh(self) -> DensityEstimate:
        """Force a full re-estimate (bypassing the policy) and return it.

        A degraded result is adopted as-is (the caller asked).  If the
        estimator *raises* and a previous estimate exists, the service
        falls through to it; with nothing to fall through to, the error
        propagates.
        """
        estimate = self._attempt_refresh(force_adopt=True)
        if estimate is None:
            assert self._current is not None  # fallthrough implies a previous
            return self._current
        return estimate

    def _attempt_refresh(self, force_adopt: bool = False) -> Optional[DensityEstimate]:
        """Run the estimator once; adopt the result unless it is a failed
        refresh (exception, or coverage below the SLO's floor) and a
        previous estimate exists to fall through to."""
        token = self.network.version_token
        before = self.network.stats.messages
        try:
            estimate: Optional[DensityEstimate] = self.estimator.estimate(
                self.network, rng=self._rng
            )
        except (NetworkError, RoutingError):
            if force_adopt and self._current is None:
                raise  # a forced bootstrap has nothing to fall through to
            estimate = None
        self.stats.refresh_messages += self.network.stats.messages - before
        low_coverage = (
            estimate is not None
            and estimate.degraded
            and estimate.coverage < self.slo.min_coverage
        )
        if estimate is None or (low_coverage and not force_adopt):
            if self._current is not None:
                # Degraded fallthrough: keep the previous estimate and
                # remember the token so this batch's failure is not
                # retried until the network moves again.
                self.stats.failed_refreshes += 1
                self._failed_token = token
                return None
            if estimate is None:
                raise NetworkError("estimation failed with no previous estimate to serve")
        assert estimate is not None  # every None path returned or raised above
        self._adopt(estimate, token)
        return estimate

    def _adopt(self, estimate: DensityEstimate, token: tuple[int, int]) -> None:
        self._current = estimate
        self._epoch += 1
        self._epoch_key = (token[0], token[1], self._epoch)
        self._base_token = token
        self._failed_token = None
        self.policy.observe_refresh()
        self.stats.refreshes += 1

    def _bumps_since_base(self, token: tuple[int, int]) -> int:
        assert self._base_token is not None
        return (token[0] - self._base_token[0]) + (token[1] - self._base_token[1])

    def _prepare(self) -> DensityEstimate:
        """Pre-batch maintenance: consult the policy, check, refresh.

        Returns the estimate the batch must be answered from.  This is
        the amortization point: the common case (unchanged version token,
        or predicted staleness within the SLO) costs two integer compares
        and zero messages.
        """
        self.stats.batches += 1
        if self._current is None:
            self.stats.bootstraps += 1
            self._attempt_refresh(force_adopt=True)
            self.last_decision = RefreshDecision("bootstrapped", float("inf"), 0)
            assert self._current is not None
            return self._current
        token = self.network.version_token
        if token == self._failed_token:
            # Known-bad network state: serve the fallthrough estimate.
            self.stats.served_while_failed += 1
            return self._current
        decision = self.policy.decide(self._bumps_since_base(token))
        self.last_decision = decision
        if decision.action == "served_fresh":
            self.stats.served_fresh += 1
            return self._current
        if decision.action == "served_stale":
            self.stats.served_stale += 1
            return self._current
        # Escalate: measure drift before paying for a full refresh.
        self.stats.drift_checks += 1
        before = self.network.stats.messages
        try:
            score = drift_score_between(
                self.network,
                self._current.cdf,
                self.slo.check_probes,
                self.synopsis_buckets,
                rng=self._rng,
            )
        except (NetworkError, RoutingError, ValueError):
            # The check itself failed (empty/unroutable/empty-evidence
            # network): treat as a demanded refresh and let the refresh
            # path handle fallthrough.
            score = float("inf")
        self.stats.check_messages += self.network.stats.messages - before
        if self.policy.observe_check(decision.bumps, score):
            self._attempt_refresh()
        else:
            self.stats.checks_kept += 1
            self._base_token = token
        assert self._current is not None
        return self._current

    # ------------------------------------------------------------------
    # Batched query API
    # ------------------------------------------------------------------
    def cdf_batch(self, x: NDArray[np.float64]) -> NDArray[np.float64]:
        """``F̂`` at every point of ``x`` (read-only result array).

        Element ``i`` equals ``estimate.cdf_at(float(x[i]))`` for the
        served estimate, bit for bit.
        """
        x_arr = np.atleast_1d(np.asarray(x, dtype=float))
        estimate = self._prepare()
        self.stats.queries += x_arr.size
        key = self._cache.key("cdf", self._epoch_key, x_arr)
        cached = self._cache.lookup(key)
        if cached is None:
            cached = self._cache.store(
                key, np.asarray(estimate.cdf(x_arr), dtype=float)
            )
        return cached

    def quantile_batch(self, q: NDArray[np.float64]) -> NDArray[np.float64]:
        """Estimated quantiles at every level of ``q ∈ [0, 1]``."""
        q_arr = np.atleast_1d(np.asarray(q, dtype=float))
        if np.any((q_arr < 0) | (q_arr > 1)):
            raise ValueError("quantile levels must lie in [0, 1]")
        estimate = self._prepare()
        self.stats.queries += q_arr.size
        key = self._cache.key("quantile", self._epoch_key, q_arr)
        cached = self._cache.lookup(key)
        if cached is None:
            cached = self._cache.store(
                key, np.asarray(estimate.cdf.inverse(q_arr), dtype=float)
            )
        return cached

    def selectivity_batch(
        self, lows: NDArray[np.float64], highs: NDArray[np.float64]
    ) -> NDArray[np.float64]:
        """Estimated mass of every ``[low, high)`` pair.

        Element ``i`` equals ``estimate.selectivity(lows[i], highs[i])``.
        """
        lows_arr = np.atleast_1d(np.asarray(lows, dtype=float))
        highs_arr = np.atleast_1d(np.asarray(highs, dtype=float))
        if lows_arr.shape != highs_arr.shape:
            raise ValueError("lows and highs must have identical shapes")
        if np.any(lows_arr > highs_arr):
            raise ValueError("every selectivity interval needs low <= high")
        estimate = self._prepare()
        self.stats.queries += lows_arr.size
        key = self._cache.key("selectivity", self._epoch_key, lows_arr, highs_arr)
        cached = self._cache.lookup(key)
        if cached is None:
            cdf = estimate.cdf
            masses = np.asarray(cdf(highs_arr), dtype=float) - np.asarray(
                cdf(lows_arr), dtype=float
            )
            cached = self._cache.store(key, masses)
        return cached

    def sample_batch(self, n: int, seed: int = 0) -> NDArray[np.float64]:
        """``n`` inversion-method variates from the served estimate.

        ``seed`` names the draw: the same ``(estimate epoch, n, seed)``
        triple always yields the same variates (and hits the cache), and
        equals ``estimate.sample(n, rng=np.random.default_rng(seed))``
        bit for bit.
        """
        if n < 0:
            raise ValueError(f"sample size must be >= 0, got {n}")
        estimate = self._prepare()
        self.stats.queries += n
        key = self._cache.key("sample", self._epoch_key, n, seed)
        cached = self._cache.lookup(key)
        if cached is None:
            cached = self._cache.store(
                key, estimate.cdf.sample(n, np.random.default_rng(seed))
            )
        return cached
