"""S1 — the serving benchmark: QPS, tail latency, and accuracy-at-SLO.

Drives :class:`~repro.serve.service.EstimationService` with a sustained,
deterministic query workload (mixed CDF / quantile / selectivity / sample
batches with realistic batch reuse) in two phases — steady state, then
under churn plus data drift — and times the same logical queries answered
by the **per-query uncached scalar loop** every app call used to be.  The
reported contrast is the whole point of the serving layer:

* ``qps_served`` vs ``qps_scalar`` (and their ratio, ``speedup``),
* ``p50_ms`` / ``p99_ms`` per-batch serving latency (nearest-rank,
  deterministic given the latency samples),
* ``hit_rate`` of the version-keyed result cache,
* ``max_abs_error`` of the served estimate against ground truth across
  the churn phase, next to the configured ``slo_max_error`` —
  the staleness-SLO refresh policy is doing its job iff
  ``max_abs_error <= slo_max_error`` (``slo_met``).

Wall-clock reads here are instrumentation: they are *reported* (QPS,
latency percentiles) and never feed back into any estimate or table, so
the run's logical results remain a function of ``(seed, scale)`` only.
"""

from __future__ import annotations

import time
from typing import Iterator

import numpy as np
from numpy.typing import NDArray

from repro.core.cdf import empirical_cdf
from repro.core.estimate import DensityEstimate
from repro.core.estimator import DistributionFreeEstimator
from repro.core.metrics import ks_distance
from repro.data.distributions import TruncatedNormal
from repro.data.domain import UNIT_DOMAIN
from repro.data.workload import UpdateStream
from repro.experiments.common import scale_int
from repro.experiments.config import setup_network
from repro.ring.churn import ChurnConfig, ChurnProcess
from repro.serve.metrics import latency_summary
from repro.serve.policy import StalenessSLO
from repro.serve.service import EstimationService

__all__ = ["run_serving_bench", "SERVING_BENCH_ID"]

SERVING_BENCH_ID = "S1"

#: Default workload shape at ``scale=1.0`` (the acceptance configuration:
#: a 10^4-peer ring).
FULL_PEERS = 10_000
FULL_ITEMS = 100_000
FULL_BATCHES = 240
BATCH_SIZE = 512
DISTINCT_BATCHES = 24       # pool size per query kind; reuse drives cache hits
CHURN_ROUNDS = 6
ESTIMATOR_PROBES = 128
SLO_MAX_ERROR = 0.1
GRID_POINTS = 512

_KINDS = ("cdf", "quantile", "selectivity", "sample")


def _build_pools(
    domain: tuple[float, float], rng: np.random.Generator
) -> dict[str, list[NDArray[np.float64]]]:
    """Per-kind pools of distinct query batches (drawn once, then reused)."""
    low, high = domain
    pools: dict[str, list[NDArray[np.float64]]] = {kind: [] for kind in _KINDS}
    for _ in range(DISTINCT_BATCHES):
        pools["cdf"].append(rng.uniform(low, high, size=BATCH_SIZE))
        pools["quantile"].append(rng.uniform(0.0, 1.0, size=BATCH_SIZE))
        lows = rng.uniform(low, high, size=BATCH_SIZE)
        widths = rng.uniform(0.0, (high - low) * 0.2, size=BATCH_SIZE)
        highs = np.minimum(lows + widths, high)
        pools["selectivity"].append(np.stack((lows, highs)))
        # Sample batches are named by their seed (column 0) — the batch
        # payload is (n, seed), not an input array.
        pools["sample"].append(np.asarray([float(int(rng.integers(0, 64)))]))
    return pools


def _batch_schedule(
    n_batches: int, rng: np.random.Generator
) -> Iterator[tuple[str, int]]:
    """The serving workload: kind round-robin, pool index Zipf-ish reused.

    Low indexes repeat often (hot queries), high indexes are rare — the
    reuse pattern the result cache exists for.
    """
    for i in range(n_batches):
        kind = _KINDS[i % len(_KINDS)]
        # Squared uniform skews towards 0: a heavy-reuse pool pick.
        index = int(rng.random() ** 2 * DISTINCT_BATCHES)
        yield kind, min(index, DISTINCT_BATCHES - 1)


def _serve_batch(
    service: EstimationService,
    kind: str,
    batch: NDArray[np.float64],
) -> NDArray[np.float64]:
    """Answer one batch through the service (the batched cached path)."""
    if kind == "cdf":
        return service.cdf_batch(batch)
    if kind == "quantile":
        return service.quantile_batch(batch)
    if kind == "selectivity":
        return service.selectivity_batch(batch[0], batch[1])
    return service.sample_batch(BATCH_SIZE, seed=int(batch[0]))


def _scalar_batch(
    estimate: DensityEstimate, kind: str, batch: NDArray[np.float64]
) -> float:
    """Answer one batch with per-query scalar calls — the pre-serving path.

    Returns a checksum so the loop cannot be optimized away.
    """
    total = 0.0
    if kind == "cdf":
        cdf_at = estimate.cdf_at
        for x in batch.tolist():
            total += float(cdf_at(x))
    elif kind == "quantile":
        quantile = estimate.quantile
        for q in batch.tolist():
            total += float(quantile(q))
    elif kind == "selectivity":
        selectivity = estimate.selectivity
        for low, high in zip(batch[0].tolist(), batch[1].tolist()):
            total += selectivity(low, high)
    else:
        rng = np.random.default_rng(int(batch[0]))
        sample = estimate.cdf.sample
        for _ in range(BATCH_SIZE):
            total += float(sample(1, rng)[0])
    return total


def run_serving_bench(scale: float = 1.0, seed: int = 0) -> dict[str, float]:
    """Run the serving benchmark; returns the S1 metrics document.

    ``scale=1.0`` is the acceptance configuration (``N = 10^4`` peers).
    All logical behaviour (queries, refreshes, accuracy) is a function of
    ``(seed, scale)``; only the QPS/latency numbers are machine-dependent.
    """
    n_peers = scale_int(FULL_PEERS, scale, minimum=64)
    n_items = scale_int(FULL_ITEMS, scale, minimum=4_000)
    n_batches = scale_int(FULL_BATCHES, min(scale, 1.0), minimum=32)
    # The drift-tracking workload (cf. F11): a normal-fixture ring.  The
    # SLO phase needs an estimator whose *fresh* error sits well under the
    # promise — heavy-tailed fixtures (zipf) need probe budgets beyond any
    # serving refresh to clear 0.1 KS, which would test the estimator, not
    # the staleness policy.
    fixture = setup_network("normal", n_peers=n_peers, n_items=n_items, seed=seed)
    network = fixture.network

    slo = StalenessSLO(max_error=SLO_MAX_ERROR, check_probes=16)
    service = EstimationService(
        network,
        estimator=DistributionFreeEstimator(probes=ESTIMATOR_PROBES),
        slo=slo,
        cache_entries=256,
        rng=np.random.default_rng(seed + 11),
    )
    pools = _build_pools(network.domain, np.random.default_rng(seed + 23))
    schedule = list(_batch_schedule(n_batches, np.random.default_rng(seed + 31)))
    grid = np.linspace(*network.domain, GRID_POINTS)

    # ------------------------------------------------------------------
    # Phase 1 — steady state: sustained traffic, no mutations.
    # ------------------------------------------------------------------
    latencies: list[float] = []
    service.refresh()  # bootstrap outside the timed loop
    served_start = time.perf_counter()  # repro-lint: disable=RNG002 (QPS instrumentation; timing is reported, never fed into results)
    for kind, index in schedule:
        t0 = time.perf_counter()  # repro-lint: disable=RNG002 (latency instrumentation; timing is reported, never fed into results)
        _serve_batch(service, kind, pools[kind][index])
        latencies.append(time.perf_counter() - t0)  # repro-lint: disable=RNG002 (latency instrumentation; timing is reported, never fed into results)
    served_elapsed = time.perf_counter() - served_start  # repro-lint: disable=RNG002 (QPS instrumentation; timing is reported, never fed into results)

    # ------------------------------------------------------------------
    # Phase 2 — under churn + data drift: the SLO must hold while the
    # policy decides when to spend messages.
    # ------------------------------------------------------------------
    churn = ChurnProcess(
        network,
        ChurnConfig(join_rate=0.02, leave_rate=0.02, crash_fraction=0.5),
        rng=np.random.default_rng(seed + 41),
    )
    stream = UpdateStream(fixture.dataset, insert_fraction=0.5, seed=seed + 5)
    errors: list[float] = []
    churn_schedule = list(
        _batch_schedule(n_batches, np.random.default_rng(seed + 43))
    )
    per_round = max(len(churn_schedule) // CHURN_ROUNDS, 1)
    updates = max(n_items // 10, 200)
    for round_index in range(CHURN_ROUNDS):
        # Drift: inserts slide towards the right edge of the domain.
        stream.insert_distribution = TruncatedNormal(
            mean=0.5 + 0.4 * (round_index + 1) / CHURN_ROUNDS,
            std=0.08,
            _domain=UNIT_DOMAIN,
        )
        ops = list(stream.ops(updates))
        owners = network.owners_of_values(
            np.asarray([op.value for op in ops], dtype=float)
        )
        for op, owner in zip(ops, owners):
            if op.kind == "insert":
                owner.store.insert(op.value)
            else:
                owner.store.remove(op.value)
        churn.run_round()
        for kind, index in churn_schedule[
            round_index * per_round : (round_index + 1) * per_round
        ]:
            t0 = time.perf_counter()  # repro-lint: disable=RNG002 (latency instrumentation; timing is reported, never fed into results)
            _serve_batch(service, kind, pools[kind][index])
            latencies.append(time.perf_counter() - t0)  # repro-lint: disable=RNG002 (latency instrumentation; timing is reported, never fed into results)
        # Accuracy-at-SLO: the served estimate vs live ground truth.
        truth = empirical_cdf(network.all_values(), presorted=True)
        assert service.current is not None
        errors.append(ks_distance(service.current.cdf, truth, grid))

    # ------------------------------------------------------------------
    # Baseline — the same logical queries, per-query scalar, no cache.
    # ------------------------------------------------------------------
    baseline_estimate = service.current
    checksum = 0.0
    scalar_start = time.perf_counter()  # repro-lint: disable=RNG002 (QPS instrumentation; timing is reported, never fed into results)
    for kind, index in schedule:
        checksum += _scalar_batch(baseline_estimate, kind, pools[kind][index])
    scalar_elapsed = time.perf_counter() - scalar_start  # repro-lint: disable=RNG002 (QPS instrumentation; timing is reported, never fed into results)

    # QPS contrast is apples-to-apples: the identical steady-state schedule
    # through both paths.  (Churn-phase batches still feed the latency
    # tails and the cache hit rate; their cost is maintenance, reported via
    # ``maintenance_messages``, not folded into throughput.)
    steady_queries = float(len(schedule) * BATCH_SIZE)
    qps_served = steady_queries / served_elapsed if served_elapsed > 0 else 0.0
    qps_scalar = steady_queries / scalar_elapsed if scalar_elapsed > 0 else 0.0
    tails = latency_summary(np.asarray(latencies, dtype=float))
    max_abs_error = float(np.max(errors)) if errors else 0.0

    return {
        "n_peers": float(n_peers),
        "n_items": float(n_items),
        "batches": float(service.stats.batches),
        "queries": float(service.stats.queries),
        "qps_served": qps_served,
        "qps_scalar": qps_scalar,
        "speedup": qps_served / qps_scalar if qps_scalar > 0 else 0.0,
        "p50_ms": tails["p50_ms"],
        "p99_ms": tails["p99_ms"],
        "hit_rate": service.cache_stats.hit_rate,
        "refreshes": float(service.stats.refreshes),
        "drift_checks": float(service.stats.drift_checks),
        "served_fresh": float(service.stats.served_fresh),
        "served_stale": float(service.stats.served_stale),
        "maintenance_messages": float(service.stats.maintenance_messages),
        "max_abs_error": max_abs_error,
        "slo_max_error": slo.max_error,
        "slo_met": float(max_abs_error <= slo.max_error),
        "checksum": checksum,
    }
