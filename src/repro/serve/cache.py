"""The version-keyed result cache behind the estimation service.

Serving millions of queries means the same (and overlapping) batches come
back again and again; re-evaluating the interpolation tables for each is
pure waste while the underlying estimate has not changed.  The cache keys
every result on the *epoch key* — ``(topology_version, data_version,
estimate_epoch)`` captured when the served estimate was built — plus a
content digest of the query batch, so

* a repeated batch against the same estimate is a dictionary hit,
* any refresh (new epoch) or any network mutation that produced a new
  estimate silently invalidates every older entry (their keys can never
  be constructed again), and
* two different batches can never collide (the key carries the exact
  input bytes' BLAKE2b digest, dtype, and shape).

Eviction is **deterministic**: a bounded least-recently-used map whose
order is a pure function of the (deterministic) query sequence — the same
serving run always holds, hits, and evicts the same entries.  Cached
arrays are frozen (``writeable=False``) and handed back by reference, so
a hit costs O(1) regardless of the batch size.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np
from numpy.typing import NDArray

__all__ = ["CacheStats", "VersionKeyedCache", "EpochKey"]

#: The serving epoch key: ``(topology_version, data_version, estimate_epoch)``.
EpochKey = tuple[int, int, int]

#: Hashable cache-key parts derived from one query batch.
_KeyPart = Union[int, float, str, bytes, tuple[int, ...]]


@dataclass
class CacheStats:
    """Running counters of cache effectiveness."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups served (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that were hits (0.0 before any lookup)."""
        total = self.lookups
        return self.hits / total if total else 0.0


class VersionKeyedCache:
    """A bounded, deterministic result cache keyed on epoch + query bytes.

    Parameters
    ----------
    max_entries:
        Capacity bound; inserting beyond it evicts the least recently
        used entry.  Must be >= 1.
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple[_KeyPart, ...], NDArray[np.float64]] = (
            OrderedDict()
        )
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def digest(array: NDArray[np.float64]) -> bytes:
        """Content digest of one query array (dtype- and shape-aware)."""
        hasher = hashlib.blake2b(digest_size=16)
        hasher.update(str(array.dtype).encode())
        hasher.update(str(array.shape).encode())
        hasher.update(np.ascontiguousarray(array).tobytes())
        return hasher.digest()

    def key(
        self,
        kind: str,
        epoch_key: EpochKey,
        *parts: Union[NDArray[np.float64], int, float, str],
    ) -> tuple[_KeyPart, ...]:
        """Build the cache key for one query batch.

        ``kind`` names the query family (``"cdf"``, ``"quantile"``, ...);
        ``parts`` are the batch inputs — arrays are digested by content,
        scalars are embedded directly.
        """
        key_parts: list[_KeyPart] = [kind, *epoch_key]
        for part in parts:
            if isinstance(part, np.ndarray):
                key_parts.append(self.digest(part))
            else:
                key_parts.append(part)
        return tuple(key_parts)

    def lookup(self, key: tuple[_KeyPart, ...]) -> Optional[NDArray[np.float64]]:
        """The cached result for ``key``, or ``None`` (counts a miss)."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def store(
        self, key: tuple[_KeyPart, ...], value: NDArray[np.float64]
    ) -> NDArray[np.float64]:
        """Insert a result and return the frozen array actually cached.

        The stored array is made read-only so hits can alias it safely;
        callers that need to mutate a result must copy it first.
        """
        frozen = np.asarray(value)
        frozen.setflags(write=False)
        if key not in self._entries and len(self._entries) >= self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        self._entries[key] = frozen
        self._entries.move_to_end(key)
        self.stats.insertions += 1
        return frozen

    def clear(self) -> None:
        """Drop every entry (stats are kept — they describe the session)."""
        self._entries.clear()

    def keys(self) -> list[tuple[_KeyPart, ...]]:
        """Current keys, oldest-used first (for tests and introspection)."""
        return list(self._entries.keys())
