"""Deterministic serving metrics: nearest-rank percentiles and summaries.

Latency percentiles computed with interpolating estimators (numpy's
default ``linear`` method) are bit-stable only if every float involved
is; the safer contract for a benchmark that must compare runs across
machines and worker counts is **nearest-rank**: the percentile *is one of
the samples*, selected by a fixed rule with fixed tie-breaking (ties are
indistinguishable — any of the equal samples is the same float).  One
``np.partition`` call selects it in O(n) without sorting the batch.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from numpy.typing import NDArray

__all__ = ["percentile_nearest_rank", "latency_summary"]


def percentile_nearest_rank(
    values: NDArray[np.float64] | Sequence[float], percentile: float
) -> float:
    """The nearest-rank ``percentile`` of ``values``.

    Uses the classic definition: the smallest sample whose rank ``k``
    satisfies ``k >= ceil(p/100 · n)`` (1-indexed), so ``p=50`` on an even
    batch picks the lower median and ``p=100`` the maximum — always an
    element of ``values``, never an interpolation.  Selection uses
    ``np.partition``: O(n), and deterministic because the k-th order
    statistic of a multiset is unique as a *value* even when ties make the
    choice of index arbitrary.
    """
    if not 0.0 < percentile <= 100.0:
        raise ValueError(f"percentile must be in (0, 100], got {percentile}")
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("values must be a non-empty 1-D array")
    rank = int(np.ceil(percentile / 100.0 * arr.size))  # 1-indexed
    index = max(rank - 1, 0)
    return float(np.partition(arr, index)[index])


def latency_summary(
    latencies_s: NDArray[np.float64] | Sequence[float],
    percentiles: Sequence[float] = (50.0, 99.0),
) -> dict[str, float]:
    """Millisecond latency percentiles keyed ``p50_ms``, ``p99_ms``, ...

    ``percentiles`` with fractional parts key as e.g. ``p99.9_ms``.  The
    input is in seconds (what ``perf_counter`` differences yield).
    """
    arr = np.asarray(latencies_s, dtype=float)
    summary: dict[str, float] = {}
    for pct in percentiles:
        label = f"{pct:g}"
        summary[f"p{label}_ms"] = percentile_nearest_rank(arr, pct) * 1e3
    return summary
