"""Computing the global CDF exactly — the expensive reference path.

The paper introduces algorithms both for *computing* and for *sampling* the
global CDF.  This module is the computing half: visit **every** live peer,
collect its summary, and combine with exact weights (each peer counted
once, weight proportional to its item count).  Two collection strategies:

* :func:`compute_global_cdf_traversal` — walk the successor ring; O(N)
  messages, O(N) latency.
* :func:`compute_global_cdf_broadcast` — Chord broadcast over fingers, each
  node delegating disjoint sub-arcs; O(N) messages, O(log N) latency depth.

Both cost Θ(N) messages, which is exactly why the sampling path exists;
the cost-accuracy benchmarks quantify the gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.cdf_sampling import assemble_cdf
from repro.core.estimate import DensityEstimate
from repro.core.synopsis import PeerSummary, summarize_peer
from repro.ring.messages import CostSnapshot, MessageType
from repro.ring.network import RingNetwork
from repro.ring.node import PeerNode
from repro.ring.routing import successor_walk

__all__ = [
    "ExactCdfEstimator",
    "compute_global_cdf_traversal",
    "compute_global_cdf_broadcast",
]


def _combine(
    network: RingNetwork,
    summaries: list[PeerSummary],
    cost: CostSnapshot,
    method: str,
    latency_rounds: float,
) -> DensityEstimate:
    """Exact-weight combination: every peer once, weight ∝ its count."""
    counts = np.asarray([s.local_count for s in summaries], dtype=float)
    total = counts.sum()
    if total <= 0:
        raise ValueError("network holds no data; nothing to estimate")
    cdf = assemble_cdf(summaries, counts / total, network.domain, "linear")
    return DensityEstimate(
        cdf=cdf,
        domain=network.domain,
        n_items=float(total),
        n_peers=float(len(summaries)),
        probes=len(summaries),
        cost=cost,
        method=method,
        latency_rounds=latency_rounds,
    )


def compute_global_cdf_traversal(
    network: RingNetwork,
    buckets: int = 8,
    start: Optional[PeerNode] = None,
) -> DensityEstimate:
    """Exact global CDF by walking the full successor ring.

    Visits each of the N live peers once (N-1 successor hops plus one
    summary exchange per peer) and combines their synopses with exact
    count weights.  The result is the true global CDF at synopsis
    resolution — and exactly the empirical CDF as ``buckets → ∞``.
    """
    before = network.stats.snapshot()
    origin = start if start is not None else network.random_peer()
    summaries = [summarize_peer(network, origin, buckets)]
    for peer in successor_walk(network, origin, max(network.n_peers - 1, 0)):
        if peer.ident == origin.ident:
            break  # ring shrank under us; we're back at the start
        summaries.append(summarize_peer(network, peer, buckets))
    # One request/reply pair per visited peer, posted in bulk (totals are
    # identical to recording each exchange separately).
    network.record(MessageType.PREFIX_REQUEST, count=len(summaries))
    network.record(
        MessageType.PREFIX_REPLY,
        count=len(summaries),
        payload=(buckets + 2) * len(summaries),
    )
    cost = before.delta(network.stats.snapshot())
    # The walk is strictly sequential: one hop plus one exchange per peer.
    latency = float(3 * len(summaries) - 1)
    return _combine(network, summaries, cost, "exact-traversal", latency)


def compute_global_cdf_broadcast(
    network: RingNetwork,
    buckets: int = 8,
    root: Optional[PeerNode] = None,
) -> DensityEstimate:
    """Exact global CDF by Chord broadcast/convergecast over finger tables.

    The root owns the full ring arc and delegates disjoint sub-arcs to its
    fingers; each delegate recurses on its own fingers within its arc.  On a
    stabilized ring every peer is reached exactly once with 2(N-1) messages
    and O(log N) latency depth.  Under churn, stale fingers can duplicate or
    miss peers; duplicates are suppressed (their delegation message is still
    paid for), matching real broadcast behaviour.
    """
    before = network.stats.snapshot()
    origin = root if root is not None else network.random_peer()
    visited: set[int] = set()
    summaries: list[PeerSummary] = []
    max_depth = 0
    delegations = 0

    def visit(node: PeerNode, arc_end: int, depth: int = 0) -> None:
        """Collect ``node`` and delegate the arc ``(node, arc_end)``."""
        nonlocal max_depth, delegations
        if node.ident in visited:
            return
        visited.add(node.ident)
        max_depth = max(max_depth, depth)
        summaries.append(summarize_peer(network, node, buckets))
        # Distinct live fingers strictly inside the arc, in ring order.
        children: list[int] = []
        for finger_id in node.fingers:
            if finger_id is None or finger_id == node.ident:
                continue
            if not network.space.in_open(finger_id, node.ident, arc_end):
                continue
            if finger_id not in children:
                children.append(finger_id)
        children.sort(key=lambda f: network.space.distance(node.ident, f))
        boundaries = children[1:] + [arc_end]
        for child_id, boundary in zip(children, boundaries):
            delegations += 1
            child = network.try_node(child_id)
            if child is None or not child.alive:
                continue  # timed-out delegation; that sub-arc is missed
            visit(child, boundary, depth + 1)

    visit(origin, origin.ident)
    # Every delegation (including ones to departed peers — the message was
    # still paid for) is a request/reply pair, posted in bulk.
    if delegations:
        network.record(MessageType.PREFIX_REQUEST, count=delegations)
        network.record(
            MessageType.PREFIX_REPLY,
            count=delegations,
            payload=(buckets + 2) * delegations,
        )
    cost = before.delta(network.stats.snapshot())
    # Down the tree and back up the convergecast: 2 rounds per level.
    latency = float(2 * max_depth + 1)
    return _combine(network, summaries, cost, "exact-broadcast", latency)


@dataclass(frozen=True)
class ExactCdfEstimator:
    """The exact computation wrapped in the estimator protocol.

    Lets experiments place the Θ(N)-message reference on the same
    cost-accuracy axes as the sampling methods.
    """

    buckets: int = 8
    strategy: str = "broadcast"
    name: str = "exact"

    def estimate(
        self, network: RingNetwork, rng: Optional[np.random.Generator] = None
    ) -> DensityEstimate:
        """Run the chosen exact collection strategy."""
        if self.strategy == "broadcast":
            return compute_global_cdf_broadcast(network, self.buckets)
        if self.strategy == "traversal":
            return compute_global_cdf_traversal(network, self.buckets)
        raise ValueError(f"unknown strategy {self.strategy!r}")
