"""One probe surface, two ring backends.

The estimator stack reads a small, stable surface off whatever holds the
ring: the identifier space, the message ledger, the data domain, the RNG
that seeds probe entry points, and the version token the serving layer
keys its cache on.  Both the object backend (:class:`RingNetwork`, peers
as :class:`~repro.ring.node.PeerNode` objects) and the compact backend
(:class:`CompactRing`, peers as columnar arrays) provide it, so
:class:`~repro.core.estimator.DistributionFreeEstimator`,
:class:`~repro.core.adaptive.AdaptiveDensityEstimator`, and
:class:`~repro.serve.service.EstimationService` accept either.

:data:`RingBackend` is the union the probe path dispatches on (an
``isinstance`` check against :class:`CompactRing` selects the columnar
fast path); :class:`ProbeBackend` is the structural contract both members
satisfy, kept runtime-checkable so tests can assert conformance.
"""

from __future__ import annotations

from typing import Protocol, Union, runtime_checkable

import numpy as np

from repro.ring.compact import CompactRing
from repro.ring.identifier import IdentifierSpace
from repro.ring.messages import MessageStats
from repro.ring.network import RingNetwork

__all__ = ["ProbeBackend", "RingBackend"]


@runtime_checkable
class ProbeBackend(Protocol):
    """What the estimator stack requires of a ring backend."""

    space: IdentifierSpace
    stats: MessageStats
    rng: np.random.Generator

    @property
    def n_peers(self) -> int:
        """Current peer count."""
        ...

    @property
    def domain(self) -> tuple[float, float]:
        """The data value domain mapped onto the ring."""
        ...

    @property
    def version_token(self) -> tuple[int, int]:
        """``(topology_version, data_version)`` — the staleness cache key."""
        ...


#: The concrete backends the probe path accepts.  A plain union (not the
#: protocol) in signatures keeps ``isinstance`` narrowing exact: the
#: compact branch uses columnar batch routing, everything else the object
#: backend's node-graph path.
RingBackend = Union[RingNetwork, CompactRing]
