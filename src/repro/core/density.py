"""Density estimation from CDFs.

The paper's deliverable is a *density* estimate; the estimators internally
produce a CDF.  This module converts: finite differences give a raw
histogram-style density, and Gaussian kernel smoothing of the CDF
derivative gives a continuous estimate.  Both operate purely on the CDF
object, so they apply uniformly to our estimator and to every baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.typing import NDArray

from repro.core.cdf import PiecewiseCDF

__all__ = ["DensityCurve", "density_from_cdf", "smoothed_density_from_cdf"]


@dataclass(frozen=True)
class DensityCurve:
    """A density sampled on grid-cell midpoints."""

    midpoints: NDArray[np.float64]
    density: NDArray[np.float64]

    def __post_init__(self) -> None:
        if self.midpoints.shape != self.density.shape:
            raise ValueError("midpoints and density must have equal shape")
        if np.any(self.density < -1e-12):
            raise ValueError("density must be non-negative")

    @property
    def total_mass(self) -> float:
        """Integral of the curve over the grid (≈ 1 for a proper density)."""
        if self.midpoints.size < 2:
            return 0.0
        return float(np.trapezoid(self.density, self.midpoints))

    def at(self, x: float) -> float:
        """Linear interpolation of the curve at one point."""
        return float(np.interp(x, self.midpoints, self.density))

    def mode(self) -> float:
        """Location of the highest density value."""
        return float(self.midpoints[int(np.argmax(self.density))])


def density_from_cdf(
    cdf: PiecewiseCDF, domain: tuple[float, float], cells: int = 128
) -> DensityCurve:
    """Finite-difference density on an even grid over ``domain``."""
    low, high = domain
    if not low < high:
        raise ValueError(f"empty domain ({low}, {high})")
    if cells < 1:
        raise ValueError(f"cells must be >= 1, got {cells}")
    grid = np.linspace(low, high, cells + 1)
    density = np.clip(cdf.density_on_grid(grid), 0.0, None)
    midpoints = 0.5 * (grid[:-1] + grid[1:])
    return DensityCurve(midpoints=midpoints, density=density)


def smoothed_density_from_cdf(
    cdf: PiecewiseCDF,
    domain: tuple[float, float],
    cells: int = 128,
    bandwidth: float | None = None,
) -> DensityCurve:
    """Gaussian-kernel-smoothed density from a CDF.

    The raw finite-difference density is convolved with a Gaussian kernel
    of the given ``bandwidth`` (in domain units; defaults to two grid
    cells).  Reflection padding at the domain edges avoids the boundary
    bias a plain convolution would introduce.
    """
    raw = density_from_cdf(cdf, domain, cells)
    low, high = domain
    cell_width = (high - low) / cells
    if bandwidth is None:
        bandwidth = 2.0 * cell_width
    if bandwidth <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth}")

    sigma_cells = bandwidth / cell_width
    # Reflection padding can mirror at most the full curve.
    radius = min(max(int(np.ceil(3 * sigma_cells)), 1), cells)
    offsets = np.arange(-radius, radius + 1)
    kernel = np.exp(-0.5 * (offsets / sigma_cells) ** 2)
    kernel /= kernel.sum()

    padded = np.concatenate(
        [raw.density[radius - 1 :: -1] if radius > 0 else raw.density[:0],
         raw.density,
         raw.density[: -radius - 1 : -1]]
    )
    smoothed = np.convolve(padded, kernel, mode="valid")
    # Renormalise: reflection keeps mass approximately, not exactly.
    mass = np.trapezoid(smoothed, raw.midpoints)
    if mass > 0:
        smoothed = smoothed * (raw.total_mass / mass) if raw.total_mass > 0 else smoothed
    return DensityCurve(midpoints=raw.midpoints, density=np.clip(smoothed, 0.0, None))
