"""Byzantine peers and estimation robustness.

Probe-based estimation trusts each reply.  A *pollution attack* exploits
that: a lying peer reports an inflated item count with its claimed mass
parked at an attacker-chosen value, dragging the Horvitz–Thompson weights
(one reply with density 100× the honest level dominates the whole
estimate).  This module implements the attacker — peers marked with a
:class:`ByzantineBehavior` fabricate their probe replies — and the
standard statistical defense: *density trimming*, which discards replies
whose implied density is an extreme outlier against the probe batch's
median.  The F17 experiment measures both sides: how badly the attack
hurts the trusting estimator, and what the defense costs on honest skewed
data (where heavy peers are legitimately outliers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.synopsis import PeerSummary, SegmentSummary
from repro.ring.network import RingNetwork

__all__ = [
    "ByzantineBehavior",
    "corrupt_network",
    "fabricate_summary",
    "trim_outlier_summaries",
]


@dataclass(frozen=True)
class ByzantineBehavior:
    """How a lying peer fabricates its probe reply.

    Attributes
    ----------
    count_multiplier:
        Claimed item count = multiplier × true count (minimum 1, so even
        an empty attacker claims data).
    fake_mass_at:
        Domain value where the fabricated mass is claimed to sit.  When
        it falls outside the peer's segment the claim lands in the nearest
        edge bucket — exactly what a real attacker constrained to its own
        key range would do.  ``None`` keeps the true shape, only scaled.
    """

    count_multiplier: float = 100.0
    fake_mass_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.count_multiplier <= 0:
            raise ValueError(
                f"count_multiplier must be positive, got {self.count_multiplier}"
            )


def corrupt_network(
    network: RingNetwork,
    fraction: float,
    behavior: ByzantineBehavior,
    rng: Optional[np.random.Generator] = None,
) -> list[int]:
    """Mark a random ``fraction`` of peers as Byzantine; returns their ids."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    generator = rng if rng is not None else network.rng
    ids = list(network.peer_ids())
    n_liars = int(round(fraction * len(ids)))
    # Choose by index: 64-bit identifiers do not survive the float64 cast
    # numpy's choice() would apply to them directly.
    picked = generator.choice(len(ids), size=n_liars, replace=False)
    liars = [ids[int(i)] for i in picked]
    liar_set = set(liars)
    for ident in ids:
        network.node(ident).byzantine = behavior if ident in liar_set else None
    return liars


def fabricate_summary(honest: PeerSummary, behavior: ByzantineBehavior) -> PeerSummary:
    """The lie a Byzantine peer sends instead of its honest summary.

    Segment geometry (``ℓ``, value ranges) is kept honest — neighbours can
    verify it — while counts are inflated and, optionally, concentrated in
    the bucket nearest ``fake_mass_at``.
    """
    claimed_total = max(int(round(honest.local_count * behavior.count_multiplier)), 1)
    segments: list[SegmentSummary] = []
    remaining = claimed_total
    for index, segment in enumerate(honest.segments):
        if index == len(honest.segments) - 1:
            claimed = remaining
        else:
            share = segment.total / max(honest.local_count, 1)
            claimed = int(round(claimed_total * share))
            remaining -= claimed
        counts = np.zeros(segment.buckets, dtype=np.int64)
        if behavior.fake_mass_at is not None:
            edges = segment.bucket_edges()
            target = int(np.searchsorted(edges, behavior.fake_mass_at, side="right")) - 1
            target = min(max(target, 0), segment.buckets - 1)
            counts[target] = claimed
        elif segment.total > 0:
            scaled = np.floor(segment.counts * claimed / segment.total).astype(np.int64)
            scaled[-1] += claimed - int(scaled.sum())
            counts = scaled
        else:
            counts[-1] = claimed
        segments.append(
            SegmentSummary(segment.value_low, segment.value_high, counts, edges=segment.edges)
        )
    return PeerSummary(
        peer_id=honest.peer_id,
        segment_length=honest.segment_length,
        local_count=claimed_total,
        segments=tuple(segments),
    )


def trim_outlier_summaries(
    summaries: Sequence[PeerSummary],
    max_density_ratio: float = 20.0,
    neighborhood: int = 4,
) -> list[PeerSummary]:
    """Drop replies whose density is wildly inconsistent with their ring
    neighbourhood.

    A *global* density threshold would throw away honest heavy hitters on
    skewed data (the head of a zipf ring legitimately has densities far
    above the median).  Honest density, however, varies smoothly along the
    ring, while randomly placed liars are isolated spikes: each reply is
    therefore compared against the **median density of its ``2·k`` ring-
    nearest other replies** and discarded only when it exceeds
    ``max_density_ratio`` times that local reference.
    """
    if max_density_ratio <= 1.0:
        raise ValueError(f"max_density_ratio must be > 1, got {max_density_ratio}")
    if neighborhood < 1:
        raise ValueError(f"neighborhood must be >= 1, got {neighborhood}")
    unique: dict[int, PeerSummary] = {}
    for summary in summaries:
        unique[summary.peer_id] = summary
    if len(unique) <= 2:
        return list(summaries)
    ordered = sorted(unique.values(), key=lambda s: min(seg.value_low for seg in s.segments))
    count = len(ordered)
    dropped: set[int] = set()
    for index, summary in enumerate(ordered):
        neighbors = []
        for offset in range(1, neighborhood + 1):
            neighbors.append(ordered[(index - offset) % count].density)
            neighbors.append(ordered[(index + offset) % count].density)
        reference = float(np.median(neighbors))
        if reference <= 0:
            # An all-empty neighbourhood gives no reference; fall back to
            # the global median so a lone spike there is still caught.
            reference = float(
                np.median([s.density for s in ordered if s.local_count > 0] or [0.0])
            )
        if reference > 0 and summary.density > max_density_ratio * reference:
            dropped.add(summary.peer_id)
    return [s for s in summaries if s.peer_id not in dropped]
