"""Core contribution: distribution-free global density estimation.

The CDF machinery, the exact and sampled global-CDF algorithms, the
inversion-method samplers, and the estimator facade plus its baselines.
"""

from repro.core.adaptive import AdaptiveDensityEstimator, allocate_refinement_probes
from repro.core.byzantine import (
    ByzantineBehavior,
    corrupt_network,
    fabricate_summary,
    trim_outlier_summaries,
)
from repro.core.cdf import PiecewiseCDF, empirical_cdf
from repro.core.confidence import (
    ConfidenceBand,
    bootstrap_confidence_band,
    estimate_with_confidence,
)
from repro.core.cdf_compute import (
    ExactCdfEstimator,
    compute_global_cdf_broadcast,
    compute_global_cdf_traversal,
)
from repro.core.cdf_sampling import (
    InterpolatedReconstruction,
    ProbeFailure,
    ProbeResult,
    assemble_cdf,
    assemble_cdf_interpolated,
    collect_probes,
    collect_probes_resilient,
    estimate_peer_count,
    estimate_total_items,
    ht_weights,
    probe_positions,
)
from repro.core.density import DensityCurve, density_from_cdf, smoothed_density_from_cdf
from repro.core.estimate import (
    DegradedEstimate,
    DensityEstimate,
    degraded_from_exception,
    zero_evidence_estimate,
)
from repro.core.estimator import DensityEstimator, DistributionFreeEstimator
from repro.core.inversion import InversionSampler, inverse_transform_sample
from repro.core.metrics import (
    ErrorReport,
    emd,
    evaluate_estimate,
    kl_divergence_binned,
    ks_distance,
    ks_distance_to_samples,
    l1_cdf_distance,
    l2_cdf_distance,
    total_variation_binned,
)
from repro.core.quantile import (
    equi_depth_boundaries,
    interquartile_range,
    median,
    quantile,
    quantiles,
)
from repro.core.rank_sampling import PrefixIndex, build_prefix_index, sample_by_rank
from repro.core.synopsis import PeerSummary, SegmentSummary, summarize_peer
from repro.core.tracking import ContinuousEstimator, MaintenanceAction

__all__ = [
    "AdaptiveDensityEstimator",
    "ByzantineBehavior",
    "ConfidenceBand",
    "ContinuousEstimator",
    "MaintenanceAction",
    "DegradedEstimate",
    "DensityCurve",
    "DensityEstimate",
    "DensityEstimator",
    "DistributionFreeEstimator",
    "ErrorReport",
    "ExactCdfEstimator",
    "InversionSampler",
    "PeerSummary",
    "PiecewiseCDF",
    "PrefixIndex",
    "ProbeFailure",
    "ProbeResult",
    "SegmentSummary",
    "InterpolatedReconstruction",
    "allocate_refinement_probes",
    "assemble_cdf",
    "assemble_cdf_interpolated",
    "bootstrap_confidence_band",
    "build_prefix_index",
    "collect_probes",
    "collect_probes_resilient",
    "corrupt_network",
    "compute_global_cdf_broadcast",
    "compute_global_cdf_traversal",
    "degraded_from_exception",
    "density_from_cdf",
    "emd",
    "estimate_with_confidence",
    "empirical_cdf",
    "equi_depth_boundaries",
    "estimate_peer_count",
    "estimate_total_items",
    "evaluate_estimate",
    "fabricate_summary",
    "ht_weights",
    "interquartile_range",
    "inverse_transform_sample",
    "kl_divergence_binned",
    "ks_distance",
    "ks_distance_to_samples",
    "l1_cdf_distance",
    "l2_cdf_distance",
    "median",
    "probe_positions",
    "quantile",
    "quantiles",
    "sample_by_rank",
    "smoothed_density_from_cdf",
    "summarize_peer",
    "total_variation_binned",
    "trim_outlier_summaries",
    "zero_evidence_estimate",
]
