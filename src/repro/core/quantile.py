"""Quantile queries over estimated distributions.

Thin, well-tested helpers on top of :class:`PiecewiseCDF` inversion: single
quantiles, batch quantiles, and the equi-depth boundaries used for
histogram construction and range partitioning — one of the P2P
applications (load-balanced re-partitioning) the paper's introduction
motivates.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from numpy.typing import NDArray

from repro.core.cdf import PiecewiseCDF

__all__ = ["quantile", "quantiles", "median", "interquartile_range", "equi_depth_boundaries"]


def quantile(cdf: PiecewiseCDF, q: float) -> float:
    """The ``q``-quantile, ``q ∈ [0, 1]``."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile level must be in [0, 1], got {q}")
    return float(cdf.inverse(q))


def quantiles(cdf: PiecewiseCDF, levels: Sequence[float]) -> NDArray[np.float64]:
    """Batch quantiles for a sequence of levels."""
    arr = np.asarray(levels, dtype=float)
    if np.any((arr < 0) | (arr > 1)):
        raise ValueError("quantile levels must lie in [0, 1]")
    return np.asarray(cdf.inverse(arr), dtype=float)


def median(cdf: PiecewiseCDF) -> float:
    """The 0.5-quantile."""
    return quantile(cdf, 0.5)


def interquartile_range(cdf: PiecewiseCDF) -> float:
    """``Q3 - Q1`` — a robust spread summary of the estimate."""
    q1, q3 = quantiles(cdf, [0.25, 0.75])
    return float(q3 - q1)


def equi_depth_boundaries(cdf: PiecewiseCDF, parts: int) -> NDArray[np.float64]:
    """``parts + 1`` boundaries splitting the distribution into equal-mass
    parts — the partitioning an ideal load balancer would install."""
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    levels = np.linspace(0.0, 1.0, parts + 1)
    return np.asarray(cdf.inverse(levels), dtype=float)
