"""Adaptive two-phase probing — refinement for concentrated distributions.

Uniform-position probing struggles when most of the data mass sits in a
tiny fraction of the ring (heavy Zipf skew): the dense region is rarely
probed and its mass must be interpolated across wide gaps.  The adaptive
estimator spends its probe budget in two phases:

1. **Scout** — a fraction of the budget probes stratified positions,
   producing a coarse reconstruction whose per-gap mass estimates say
   where the unexplored mass is.
2. **Refine** — the remaining probes are allocated to gaps proportionally
   to their estimated mass (largest-remainder rounding) and placed evenly
   inside each gap.

The final estimate is rebuilt from the union of all probe evidence.  The
design is no longer one-shot unbiased (the second phase's placement depends
on the first phase's data) but it is consistent, still distribution-free,
and dramatically more accurate per probe on skewed data — the F3/F4
benchmarks quantify the gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional

import numpy as np

from repro.core.cdf_sampling import (
    assemble_cdf_interpolated,
    collect_probes,
    collect_probes_at,
    estimate_peer_count,
)
from repro.core.backend import RingBackend
from repro.core.estimate import DensityEstimate, zero_evidence_estimate

__all__ = ["AdaptiveDensityEstimator", "allocate_refinement_probes"]


def allocate_refinement_probes(
    gap_masses: tuple[tuple[float, float, float], ...],
    budget: int,
) -> list[tuple[float, float, int]]:
    """Allocate ``budget`` probes over gaps ∝ estimated mass.

    Returns ``(gap_low, gap_high, probes)`` triples with the probe counts
    summing to exactly ``budget`` (largest-remainder apportionment); gaps
    with zero estimated mass receive nothing unless everything is zero, in
    which case the budget is spread evenly.
    """
    if budget < 0:
        raise ValueError(f"budget must be >= 0, got {budget}")
    if not gap_masses or budget == 0:
        return []
    masses = np.asarray([m for _, _, m in gap_masses], dtype=float)
    total = masses.sum()
    if total <= 0:
        shares = np.full(len(gap_masses), budget / len(gap_masses))
    else:
        shares = budget * masses / total
    counts = np.floor(shares).astype(int)
    remainder = budget - int(counts.sum())
    if remainder > 0:
        order = np.argsort(-(shares - counts))
        counts[order[:remainder]] += 1
    return [
        (gap[0], gap[1], int(count))
        for gap, count in zip(gap_masses, counts)
        if count > 0
    ]


@dataclass(frozen=True)
class AdaptiveDensityEstimator:
    """Two-phase (scout + refine) distribution-free estimator."""

    probes: int = 64
    scout_fraction: float = 0.5
    synopsis_buckets: int = 8
    synopsis_kind: str = "equi-width"
    gap_interpolation: Literal["linear", "log"] = "linear"
    trim_density_ratio: Optional[float] = None
    name: str = "adaptive"

    def __post_init__(self) -> None:
        if self.probes < 2:
            raise ValueError(f"adaptive estimation needs >= 2 probes, got {self.probes}")
        if not 0.0 < self.scout_fraction < 1.0:
            raise ValueError(
                f"scout_fraction must be in (0, 1), got {self.scout_fraction}"
            )
        if self.synopsis_buckets < 1:
            raise ValueError(f"synopsis_buckets must be >= 1, got {self.synopsis_buckets}")

    def estimate(
        self, network: RingBackend, rng: Optional[np.random.Generator] = None
    ) -> DensityEstimate:
        """Scout with stratified probes, refine into high-mass gaps."""
        faults = network.faults
        if (faults is not None and faults.active) or network.n_peers == 0:
            # Degraded mode: adaptive refinement steers by the scout phase's
            # gap-mass map, which failed probes would silently bias (a gap
            # that *couldn't* be probed looks identical to one that is
            # empty).  Under an active fault plane the estimator therefore
            # collapses to one resilient stratified pass with the full
            # budget — same evidence volume, honest coverage reporting.
            from repro.core.estimator import DistributionFreeEstimator

            fallback = DistributionFreeEstimator(
                probes=self.probes,
                synopsis_buckets=self.synopsis_buckets,
                synopsis_kind=self.synopsis_kind,  # type: ignore[arg-type]
                placement="stratified",
                gap_interpolation=self.gap_interpolation,
                trim_density_ratio=self.trim_density_ratio,
                name=self.name,
            )
            return fallback.estimate(network, rng)
        generator = rng if rng is not None else network.rng
        before = network.stats.snapshot()

        scout_count = max(int(self.probes * self.scout_fraction), 1)
        refine_budget = self.probes - scout_count
        scout = collect_probes(
            network,
            scout_count,
            self.synopsis_buckets,
            rng=generator,
            placement="stratified",
            synopsis_kind=self.synopsis_kind,
        )
        scout_summaries = [r.summary for r in scout]
        summaries = list(scout_summaries)

        data_hash = network.data_hash
        targets: list[int] = []
        try:
            coarse = assemble_cdf_interpolated(
                summaries, network.domain, self.gap_interpolation
            )
        except ValueError:
            # Every scouted peer was empty (tiny or extremely skewed
            # datasets).  There is no mass map to refine against, so fall
            # back to spending the rest of the budget on more stratified
            # coverage — the final reconstruction below then decides
            # whether any evidence was found at all.
            coarse = None
            if refine_budget > 0:
                fallback = collect_probes(
                    network,
                    refine_budget,
                    self.synopsis_buckets,
                    rng=generator,
                    placement="stratified",
                    synopsis_kind=self.synopsis_kind,
                )
                summaries.extend(r.summary for r in fallback)
        if coarse is not None:
            for gap_low, gap_high, count in allocate_refinement_probes(
                coarse.gap_masses, refine_budget
            ):
                # Even placement inside the gap, jittered to stay distinct.
                offsets = (np.arange(count) + generator.uniform(0, 1, size=count)) / count
                for offset in offsets:
                    value = gap_low + offset * (gap_high - gap_low)
                    targets.append(data_hash(float(value)))
        refine_latency = 0.0
        if targets:
            refined = collect_probes_at(
                network, targets, self.synopsis_buckets, self.synopsis_kind
            )
            summaries.extend(r.summary for r in refined)
            refine_latency = max(r.hops for r in refined) + 2

        if self.trim_density_ratio is not None:
            # Trim only at the end: scouting untrimmed lets a liar's
            # claimed mass *attract* refinement probes, whose honest
            # replies then expose it as an isolated density spike —
            # refinement doubles as verification.
            from repro.core.byzantine import trim_outlier_summaries

            summaries = trim_outlier_summaries(summaries, self.trim_density_ratio)

        try:
            final = assemble_cdf_interpolated(
                summaries, network.domain, self.gap_interpolation
            )
        except ValueError:
            # No probed peer carried data: degrade to the explicit
            # zero-evidence prior instead of raising.
            return zero_evidence_estimate(
                network.domain,
                before.delta(network.stats.snapshot()),
                self.name,
                self.probes,
                ("no_evidence",),
            )
        cost = before.delta(network.stats.snapshot())
        # Two sequential phases, each internally parallel.
        latency = (max(r.hops for r in scout) + 2) + refine_latency
        return DensityEstimate(
            cdf=final.cdf,
            domain=network.domain,
            n_items=final.total_items,
            # Size estimation needs the *uniform* design, so only the
            # scout phase's probes feed it; refinement probes are biased
            # towards dense regions by construction.
            n_peers=estimate_peer_count(scout_summaries, network.space.size),
            probes=len(summaries),
            cost=cost,
            method=self.name,
            latency_rounds=float(latency),
        )
