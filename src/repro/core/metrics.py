"""Error metrics between distributions.

All of the paper's accuracy results reduce to distances between an
estimated CDF/density and the ground truth.  We provide the standard set —
Kolmogorov–Smirnov, L1/L2 over the domain, KL divergence and total
variation on binned densities, and Earth Mover's Distance (which for 1-D
distributions equals the L1 distance between CDFs) — plus a one-call
:func:`evaluate_estimate` that bundles them into an :class:`ErrorReport`.

CDF arguments are any callables mapping arrays of domain points to CDF
values, so :class:`~repro.core.cdf.PiecewiseCDF`, analytic distributions,
and raw lambdas all work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
from numpy.typing import NDArray

__all__ = [
    "ErrorReport",
    "ks_distance",
    "ks_distance_to_samples",
    "l1_cdf_distance",
    "l2_cdf_distance",
    "emd",
    "kl_divergence_binned",
    "total_variation_binned",
    "evaluate_estimate",
]

CdfLike = Callable[[NDArray[np.float64]], NDArray[np.float64]]


def ks_distance(estimate: CdfLike, truth: CdfLike, grid: NDArray[np.float64]) -> float:
    """Kolmogorov–Smirnov distance ``sup_x |F̂(x) - F(x)|`` on a grid."""
    grid = np.asarray(grid, dtype=float)
    return float(np.max(np.abs(np.asarray(estimate(grid)) - np.asarray(truth(grid)))))


def ks_distance_to_samples(estimate: CdfLike, samples: Sequence[float]) -> float:
    """Exact KS distance between a CDF and an empirical sample.

    Evaluates the supremum at the sample points from both sides, the exact
    computation for a step empirical CDF — no grid discretisation error.
    """
    values = np.sort(np.asarray(samples, dtype=float))
    if values.size == 0:
        raise ValueError("need at least one sample")
    n = values.size
    est = np.asarray(estimate(values), dtype=float)
    upper = np.arange(1, n + 1) / n - est
    lower = est - np.arange(0, n) / n
    return float(max(upper.max(), lower.max(), 0.0))


def l1_cdf_distance(estimate: CdfLike, truth: CdfLike, grid: NDArray[np.float64]) -> float:
    """Mean absolute CDF difference, trapezoid-integrated over the grid,
    normalised by domain width (so the value is comparable across domains)."""
    grid = np.asarray(grid, dtype=float)
    diff = np.abs(np.asarray(estimate(grid)) - np.asarray(truth(grid)))
    width = grid[-1] - grid[0]
    if width <= 0:
        raise ValueError("grid must span a positive width")
    return float(np.trapezoid(diff, grid) / width)


def l2_cdf_distance(estimate: CdfLike, truth: CdfLike, grid: NDArray[np.float64]) -> float:
    """Root-mean-square CDF difference over the grid (Cramér-style)."""
    grid = np.asarray(grid, dtype=float)
    diff = np.asarray(estimate(grid)) - np.asarray(truth(grid))
    width = grid[-1] - grid[0]
    if width <= 0:
        raise ValueError("grid must span a positive width")
    return float(np.sqrt(np.trapezoid(diff * diff, grid) / width))


def emd(estimate: CdfLike, truth: CdfLike, grid: NDArray[np.float64]) -> float:
    """Earth Mover's Distance (1-D): ``∫ |F̂ - F| dx`` over the grid."""
    grid = np.asarray(grid, dtype=float)
    diff = np.abs(np.asarray(estimate(grid)) - np.asarray(truth(grid)))
    return float(np.trapezoid(diff, grid))


def _binned_densities(
    estimate: CdfLike, truth: CdfLike, grid: NDArray[np.float64]
) -> tuple[NDArray[np.float64], NDArray[np.float64]]:
    """Per-cell probability masses of both distributions (non-negative)."""
    grid = np.asarray(grid, dtype=float)
    p = np.clip(np.diff(np.asarray(truth(grid), dtype=float)), 0.0, None)
    q = np.clip(np.diff(np.asarray(estimate(grid), dtype=float)), 0.0, None)
    p_sum, q_sum = p.sum(), q.sum()
    if p_sum <= 0 or q_sum <= 0:
        raise ValueError("distributions carry no mass on the grid")
    return p / p_sum, q / q_sum


def kl_divergence_binned(
    estimate: CdfLike, truth: CdfLike, grid: NDArray[np.float64], epsilon: float = 1e-12
) -> float:
    """KL(truth ‖ estimate) on grid cells, with epsilon-smoothing.

    Smoothing keeps empty estimate cells from producing infinities; with
    hundreds of cells the floor contributes < 1e-9 nats.
    """
    p, q = _binned_densities(estimate, truth, grid)
    q = np.maximum(q, epsilon)
    q = q / q.sum()
    mask = p > 0
    return float(np.sum(p[mask] * np.log(p[mask] / q[mask])))


def total_variation_binned(estimate: CdfLike, truth: CdfLike, grid: NDArray[np.float64]) -> float:
    """Total-variation distance on grid cells, in ``[0, 1]``."""
    p, q = _binned_densities(estimate, truth, grid)
    return float(0.5 * np.abs(p - q).sum())


@dataclass(frozen=True)
class ErrorReport:
    """All standard metrics for one estimate, in one value object."""

    ks: float
    l1: float
    l2: float
    emd: float
    kl: float
    tv: float

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view for result tables."""
        return {
            "ks": self.ks,
            "l1": self.l1,
            "l2": self.l2,
            "emd": self.emd,
            "kl": self.kl,
            "tv": self.tv,
        }


def evaluate_estimate(
    estimate: CdfLike,
    truth: CdfLike,
    domain: tuple[float, float],
    grid_points: int = 512,
) -> ErrorReport:
    """Compute the full metric bundle on an even grid over ``domain``."""
    low, high = domain
    if not low < high:
        raise ValueError(f"empty domain ({low}, {high})")
    if grid_points < 3:
        raise ValueError(f"grid_points must be >= 3, got {grid_points}")
    grid = np.linspace(low, high, grid_points)
    # Every metric evaluates both CDFs on the *same* grid; do each
    # evaluation once and hand the metrics constant callables returning the
    # precomputed arrays (bitwise-identical, one interpolation instead of
    # eight per CDF).
    estimate_values = np.asarray(estimate(grid), dtype=float)
    truth_values = np.asarray(truth(grid), dtype=float)

    def cached_estimate(_: NDArray[np.float64]) -> NDArray[np.float64]:
        return estimate_values

    def cached_truth(_: NDArray[np.float64]) -> NDArray[np.float64]:
        return truth_values

    return ErrorReport(
        ks=ks_distance(cached_estimate, cached_truth, grid),
        l1=l1_cdf_distance(cached_estimate, cached_truth, grid),
        l2=l2_cdf_distance(cached_estimate, cached_truth, grid),
        emd=emd(cached_estimate, cached_truth, grid),
        kl=kl_divergence_binned(cached_estimate, cached_truth, grid),
        tv=total_variation_binned(cached_estimate, cached_truth, grid),
    )
