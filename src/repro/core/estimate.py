"""The user-facing result of a density estimation run.

A :class:`DensityEstimate` bundles the estimated global CDF with the
side-products every application needs: estimated data volume and network
size, the exact network cost of producing the estimate, and convenience
methods for the downstream uses the paper motivates — quantiles, range
selectivities, density curves, and inversion-method random variates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from numpy.typing import NDArray

from repro.core.cdf import PiecewiseCDF
from repro.core.density import DensityCurve, density_from_cdf, smoothed_density_from_cdf
from repro.ring.messages import CostSnapshot

__all__ = [
    "DensityEstimate",
    "DegradedEstimate",
    "degraded_from_exception",
    "zero_evidence_estimate",
]


@dataclass(frozen=True)
class DensityEstimate:
    """An estimate of the global data distribution in the network.

    Attributes
    ----------
    cdf:
        The estimated global CDF ``F̂``.
    domain:
        The data domain the estimate covers.
    n_items:
        Estimated total number of items in the network.
    n_peers:
        Estimated number of live peers.
    probes:
        Number of peers whose evidence went into the estimate.
    cost:
        Network cost (messages/hops) attributable to this estimate.
    method:
        Name of the estimator that produced it (for result tables).
    latency_rounds:
        Critical-path length in message rounds, accounting for the
        method's parallelism (parallel probes cost their *maximum* hop
        count, gossip costs its round count, a ring traversal is fully
        sequential).  NaN when the producing method does not model it.
    """

    cdf: PiecewiseCDF
    domain: tuple[float, float]
    n_items: float
    n_peers: float
    probes: int
    cost: CostSnapshot
    method: str
    latency_rounds: float = float("nan")

    def cdf_at(self, x: NDArray[np.float64] | float) -> NDArray[np.float64] | float:
        """Evaluate ``F̂`` at domain points."""
        return self.cdf(x)

    def quantile(self, q: NDArray[np.float64] | float) -> NDArray[np.float64] | float:
        """Estimated ``q``-quantile(s) of the global data, ``q ∈ [0, 1]``."""
        q_arr = np.asarray(q, dtype=float)
        if np.any((q_arr < 0) | (q_arr > 1)):
            raise ValueError("quantile levels must lie in [0, 1]")
        return self.cdf.inverse(q)

    def selectivity(self, low: float, high: float) -> float:
        """Estimated fraction of items with values in ``[low, high)``."""
        return self.cdf.mass_between(low, high)

    def count_in_range(self, low: float, high: float) -> float:
        """Estimated absolute number of items in ``[low, high)``."""
        return self.selectivity(low, high) * self.n_items

    def sample(self, n: int, rng: Optional[np.random.Generator] = None) -> NDArray[np.float64]:
        """Draw ``n`` variates from ``F̂`` by the inversion method.

        These are the "random samples for any arbitrary distribution" of
        the paper's abstract: locally generated, no further network cost.
        """
        # Seeded default: draws without an explicit generator must still
        # replay identically run to run.
        generator = rng if rng is not None else np.random.default_rng(0)
        return self.cdf.sample(n, generator)

    def density(self, cells: int = 128, smooth: bool = True) -> DensityCurve:
        """The estimated density over the domain."""
        if smooth:
            return smoothed_density_from_cdf(self.cdf, self.domain, cells=cells)
        return density_from_cdf(self.cdf, self.domain, cells=cells)

    @property
    def messages(self) -> int:
        """Total messages this estimate cost."""
        return self.cost.messages

    @property
    def hops(self) -> int:
        """Total routing hops this estimate cost."""
        return self.cost.hops

    @property
    def payload(self) -> float:
        """Total application payload moved (abstract scalar units)."""
        return self.cost.payload

    @property
    def degraded(self) -> bool:
        """Was this estimate produced under failures?  Always ``False``
        here; :class:`DegradedEstimate` overrides it."""
        return False

    @property
    def coverage(self) -> float:
        """Fraction of requested probe evidence that actually arrived.
        ``1.0`` for a fully successful estimate."""
        return 1.0


@dataclass(frozen=True)
class DegradedEstimate(DensityEstimate):
    """A density estimate produced while some probes failed.

    The graceful-degradation contract: instead of raising when the network
    misbehaves (stalled peers, partitions, exhausted retry budgets, or an
    outright empty ring), estimation returns *this* — the best
    reconstruction the surviving evidence supports, plus an honest account
    of how much evidence is missing.

    Attributes
    ----------
    coverage:
        ``probes / probes_requested`` — the fraction of requested probes
        that returned evidence.  ``0.0`` means the CDF is a pure prior
        (uniform over the domain) and should be trusted accordingly.
    probes_requested:
        How many probes the estimator attempted.
    failures:
        Sorted, de-duplicated failure reasons observed (e.g.
        ``("owner_unresponsive", "partitioned")``).
    ci_inflation:
        Multiplier applied to the confidence band's half-width relative to
        a full-coverage estimate (``~ 1/sqrt(coverage)``: the surviving
        probes are an unbiased subsample of the design, so standard errors
        scale with the square root of the realised sample size).
    confidence:
        The widened :class:`~repro.core.confidence.ConfidenceBand` built
        from the surviving replies, or ``None`` when there was no evidence
        to bootstrap from.  (Typed loosely to keep this module free of a
        circular import — :mod:`repro.core.confidence` imports this one.)
    """

    coverage: float = 0.0
    probes_requested: int = 0
    failures: tuple[str, ...] = ()
    ci_inflation: float = 1.0
    confidence: Optional[object] = None

    @property
    def degraded(self) -> bool:
        return True


def zero_evidence_estimate(
    domain: tuple[float, float],
    cost: CostSnapshot,
    method: str,
    probes_requested: int,
    failures: tuple[str, ...],
) -> DegradedEstimate:
    """The degraded estimate when *no* probe returned evidence.

    Falls back to the maximum-entropy prior — a uniform CDF over the
    domain — with ``coverage`` 0 and unknown totals, so downstream
    consumers keep working (and can see exactly how little the answer is
    worth) instead of crashing.
    """
    low, high = domain
    return DegradedEstimate(
        cdf=PiecewiseCDF(np.asarray([low, high]), np.asarray([0.0, 1.0]), kind="linear"),
        domain=domain,
        n_items=0.0,
        n_peers=0.0,
        probes=0,
        cost=cost,
        method=method,
        coverage=0.0,
        probes_requested=probes_requested,
        failures=failures,
        ci_inflation=float("inf"),
    )


def degraded_from_exception(
    exc: Exception,
    domain: tuple[float, float],
    cost: CostSnapshot,
    method: str,
    probes_requested: int,
) -> DegradedEstimate:
    """Map a network/assembly failure onto its zero-evidence estimate.

    Shared guard for estimators whose internals are not fault-plane aware
    (the baselines): a routing breakdown, an empty ring, or an all-empty
    probe batch each become an explicit degraded result instead of an
    exception escaping a user-facing ``estimate()`` call.
    """
    from repro.ring.network import NetworkError
    from repro.ring.routing import RoutingError

    if isinstance(exc, RoutingError):
        reason = "routing_failed"
    elif isinstance(exc, NetworkError):
        reason = "empty_ring"
    else:
        reason = "no_evidence"
    return zero_evidence_estimate(domain, cost, method, probes_requested, (reason,))
