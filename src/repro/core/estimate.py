"""The user-facing result of a density estimation run.

A :class:`DensityEstimate` bundles the estimated global CDF with the
side-products every application needs: estimated data volume and network
size, the exact network cost of producing the estimate, and convenience
methods for the downstream uses the paper motivates — quantiles, range
selectivities, density curves, and inversion-method random variates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.cdf import PiecewiseCDF
from repro.core.density import DensityCurve, density_from_cdf, smoothed_density_from_cdf
from repro.ring.messages import CostSnapshot

__all__ = ["DensityEstimate"]


@dataclass(frozen=True)
class DensityEstimate:
    """An estimate of the global data distribution in the network.

    Attributes
    ----------
    cdf:
        The estimated global CDF ``F̂``.
    domain:
        The data domain the estimate covers.
    n_items:
        Estimated total number of items in the network.
    n_peers:
        Estimated number of live peers.
    probes:
        Number of peers whose evidence went into the estimate.
    cost:
        Network cost (messages/hops) attributable to this estimate.
    method:
        Name of the estimator that produced it (for result tables).
    latency_rounds:
        Critical-path length in message rounds, accounting for the
        method's parallelism (parallel probes cost their *maximum* hop
        count, gossip costs its round count, a ring traversal is fully
        sequential).  NaN when the producing method does not model it.
    """

    cdf: PiecewiseCDF
    domain: tuple[float, float]
    n_items: float
    n_peers: float
    probes: int
    cost: CostSnapshot
    method: str
    latency_rounds: float = float("nan")

    def cdf_at(self, x: np.ndarray | float) -> np.ndarray | float:
        """Evaluate ``F̂`` at domain points."""
        return self.cdf(x)

    def quantile(self, q: np.ndarray | float) -> np.ndarray | float:
        """Estimated ``q``-quantile(s) of the global data, ``q ∈ [0, 1]``."""
        q_arr = np.asarray(q, dtype=float)
        if np.any((q_arr < 0) | (q_arr > 1)):
            raise ValueError("quantile levels must lie in [0, 1]")
        return self.cdf.inverse(q)

    def selectivity(self, low: float, high: float) -> float:
        """Estimated fraction of items with values in ``[low, high)``."""
        return self.cdf.mass_between(low, high)

    def count_in_range(self, low: float, high: float) -> float:
        """Estimated absolute number of items in ``[low, high)``."""
        return self.selectivity(low, high) * self.n_items

    def sample(self, n: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Draw ``n`` variates from ``F̂`` by the inversion method.

        These are the "random samples for any arbitrary distribution" of
        the paper's abstract: locally generated, no further network cost.
        """
        generator = rng if rng is not None else np.random.default_rng()
        return self.cdf.sample(n, generator)

    def density(self, cells: int = 128, smooth: bool = True) -> DensityCurve:
        """The estimated density over the domain."""
        if smooth:
            return smoothed_density_from_cdf(self.cdf, self.domain, cells=cells)
        return density_from_cdf(self.cdf, self.domain, cells=cells)

    @property
    def messages(self) -> int:
        """Total messages this estimate cost."""
        return self.cost.messages

    @property
    def hops(self) -> int:
        """Total routing hops this estimate cost."""
        return self.cost.hops

    @property
    def payload(self) -> float:
        """Total application payload moved (abstract scalar units)."""
        return self.cost.payload
