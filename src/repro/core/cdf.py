"""Cumulative distribution functions as first-class objects.

Everything the paper does — computing, sampling, inverting, and mixing
global CDFs — needs one well-behaved representation.  :class:`PiecewiseCDF`
holds a monotone function defined by breakpoints, either right-continuous
step (exact empirical CDFs) or piecewise-linear (interpolated estimates),
and supports vectorised evaluation, exact inversion (the inversion method's
workhorse), and mixture combination (how probe replies are assembled into a
global estimate).
"""

from __future__ import annotations

from typing import Literal, Sequence

import numpy as np
from numpy.typing import NDArray

__all__ = ["PiecewiseCDF", "empirical_cdf"]

Kind = Literal["linear", "step"]


class PiecewiseCDF:
    """A monotone CDF defined by breakpoints ``(xs, fs)``.

    ``F(x) = 0`` for ``x < xs[0]`` and ``F(x) = fs[-1]`` for ``x >= xs[-1]``;
    between breakpoints the function is a right-continuous step
    (``kind="step"``) or linear (``kind="linear"``).

    Invariants enforced at construction: ``xs`` strictly increasing,
    ``fs`` non-decreasing, ``0 <= fs <= 1``.
    """

    def __init__(self, xs: Sequence[float], fs: Sequence[float], kind: Kind = "linear") -> None:
        xs_arr = np.asarray(xs, dtype=float)
        fs_arr = np.asarray(fs, dtype=float)
        if xs_arr.ndim != 1 or fs_arr.ndim != 1 or xs_arr.size != fs_arr.size:
            raise ValueError("xs and fs must be 1-D arrays of equal length")
        if xs_arr.size < 1:
            raise ValueError("a CDF needs at least one breakpoint")
        if xs_arr.size > 1:
            if (xs_arr[1:] <= xs_arr[:-1]).any():
                raise ValueError("breakpoints must be strictly increasing")
            # Tolerate float round-off from weighted mixtures, reject real bugs.
            if (fs_arr[1:] - fs_arr[:-1] < -1e-9).any():
                raise ValueError("CDF values must be non-decreasing")
        fs_arr = np.maximum.accumulate(np.clip(fs_arr, 0.0, 1.0))
        if kind not in ("linear", "step"):
            raise ValueError(f"kind must be 'linear' or 'step', got {kind!r}")
        self.xs = xs_arr
        self.fs = fs_arr
        self.kind: Kind = kind

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_samples(cls, values: Sequence[float], presorted: bool = False) -> "PiecewiseCDF":
        """Exact empirical (step) CDF of a sample.

        ``presorted=True`` skips the sort *and* the second sort hidden in
        ``np.unique`` — callers holding the snapshot plane's already-sorted
        ground truth (``RingNetwork.all_values``) build identical CDFs in
        one linear pass.
        """
        arr = np.asarray(values, dtype=float)
        if not presorted:
            arr = np.sort(arr)
        if arr.size == 0:
            raise ValueError("cannot build an empirical CDF from no samples")
        if presorted:
            keep = np.empty(arr.size, dtype=bool)
            keep[0] = True
            np.not_equal(arr[1:], arr[:-1], out=keep[1:])
            unique = arr[keep]
            starts = np.flatnonzero(keep)
            counts = np.diff(np.append(starts, arr.size))
        else:
            unique, counts = np.unique(arr, return_counts=True)
        fs = np.cumsum(counts) / arr.size
        return cls(unique, fs, kind="step")

    @classmethod
    def mixture(
        cls,
        components: Sequence["PiecewiseCDF"],
        weights: Sequence[float],
        kind: Kind = "linear",
    ) -> "PiecewiseCDF":
        """Weighted mixture ``F = Σ w_i F_i`` of piecewise CDFs.

        This is how a global estimate is assembled from per-peer local CDFs:
        breakpoints are merged and each component is evaluated everywhere.
        ``kind`` sets the interpolation of the *result*; when all components
        are steps, ``kind="step"`` reproduces the mixture exactly.
        """
        if not components:
            raise ValueError("mixture needs at least one component")
        weight_arr = np.asarray(weights, dtype=float)
        if weight_arr.size != len(components):
            raise ValueError("one weight per component required")
        if np.any(weight_arr < 0):
            raise ValueError("mixture weights must be non-negative")
        total = weight_arr.sum()
        if total <= 0:
            raise ValueError("mixture weights must not all be zero")
        weight_arr = weight_arr / total
        xs = np.unique(np.concatenate([c.xs for c in components]))
        fs = np.zeros_like(xs)
        for comp, w in zip(components, weight_arr):
            if w > 0:
                fs += w * comp(xs)
        return cls(xs, fs, kind=kind)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def __call__(self, x: NDArray[np.float64] | float) -> NDArray[np.float64]:
        """Evaluate ``F`` at ``x`` (vectorised)."""
        x_arr = np.atleast_1d(np.asarray(x, dtype=float))
        if self.kind == "step":
            idx = np.searchsorted(self.xs, x_arr, side="right")
            padded = np.concatenate(([0.0], self.fs))
            out = padded[idx]
        else:
            out = np.interp(x_arr, self.xs, self.fs, left=0.0, right=float(self.fs[-1]))
        return out if np.ndim(x) else float(out[0])

    def inverse(self, u: NDArray[np.float64] | float) -> NDArray[np.float64]:
        """Generalised inverse ``F⁻¹(u) = min{x : F(x) >= u}`` (vectorised).

        This is the inversion-method primitive: feeding it uniforms yields
        variates distributed according to this CDF.  ``u`` outside
        ``[0, fs[-1]]`` clamps to the support edges.
        """
        u_arr = np.atleast_1d(np.asarray(u, dtype=float))
        u_clip = np.clip(u_arr, 0.0, float(self.fs[-1]))
        idx = np.searchsorted(self.fs, u_clip, side="left")
        idx = np.minimum(idx, self.fs.size - 1)
        if self.kind == "step":
            out = self.xs[idx]
        else:
            # Interpolate within the segment ending at idx, unless u hits a
            # breakpoint value exactly (then the leftmost preimage is taken).
            out = self.xs[idx].astype(float).copy()
            interior = (idx > 0) & (self.fs[idx] > u_clip)
            if np.any(interior):
                i = idx[interior]
                f_lo, f_hi = self.fs[i - 1], self.fs[i]
                x_lo, x_hi = self.xs[i - 1], self.xs[i]
                frac = (u_clip[interior] - f_lo) / (f_hi - f_lo)
                out[interior] = x_lo + frac * (x_hi - x_lo)
        return out if np.ndim(u) else float(out[0])

    def sample(self, n: int, rng: np.random.Generator) -> NDArray[np.float64]:
        """Draw ``n`` variates by the inversion method."""
        if n < 0:
            raise ValueError(f"sample size must be >= 0, got {n}")
        return np.asarray(self.inverse(rng.uniform(0.0, 1.0, size=n)), dtype=float)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def support(self) -> tuple[float, float]:
        """Breakpoint range ``(xs[0], xs[-1])``."""
        return (float(self.xs[0]), float(self.xs[-1]))

    @property
    def total_mass(self) -> float:
        """``F`` at the right end (1.0 for a proper CDF)."""
        return float(self.fs[-1])

    def normalized(self) -> "PiecewiseCDF":
        """Rescale so total mass is exactly 1 (repairs float drift)."""
        if self.total_mass <= 0:
            raise ValueError("cannot normalize a CDF with zero mass")
        return PiecewiseCDF(self.xs, self.fs / self.total_mass, kind=self.kind)

    def density_on_grid(self, grid: NDArray[np.float64]) -> NDArray[np.float64]:
        """Finite-difference density on an evaluation grid.

        Returns one value per grid *cell* (length ``len(grid) - 1``):
        ``(F(g[i+1]) - F(g[i])) / (g[i+1] - g[i])``.
        """
        grid = np.asarray(grid, dtype=float)
        if grid.ndim != 1 or grid.size < 2:
            raise ValueError("grid must be 1-D with at least 2 points")
        if np.any(np.diff(grid) <= 0):
            raise ValueError("grid must be strictly increasing")
        values = self(grid)
        return np.diff(values) / np.diff(grid)

    def mass_between(self, low: float, high: float) -> float:
        """Probability mass of ``[low, high)`` — the selectivity primitive."""
        if not low <= high:
            raise ValueError(f"inverted interval [{low}, {high})")
        return float(self(high)) - float(self(low))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PiecewiseCDF(kind={self.kind!r}, points={self.xs.size}, "
            f"support=({self.xs[0]:.4g}, {self.xs[-1]:.4g}))"
        )


def empirical_cdf(values: Sequence[float], presorted: bool = False) -> PiecewiseCDF:
    """Convenience alias for :meth:`PiecewiseCDF.from_samples`."""
    return PiecewiseCDF.from_samples(values, presorted=presorted)
