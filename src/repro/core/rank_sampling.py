"""Rank-based inversion sampling: exact variates drawn *from the network*.

The inversion method says: to sample from ``F``, draw ``u ~ U(0,1)`` and
return ``F⁻¹(u)``.  With a prefix-count index over the ring, ``F⁻¹`` can be
evaluated against the *actual stored data*: the target rank ``r = ⌊u·n⌋``
identifies a unique peer (the one whose cumulative count interval covers
``r``) and a unique local item.  Routing there and fetching it yields an
exactly uniform sample over the stored items — a sample from the true
global distribution with zero estimation error, at O(log N) hops per draw.

The index is built once with a Θ(N) traversal and then reused; churn makes
it stale, which :func:`sample_by_rank` tolerates (clamping residual ranks,
skipping emptied peers) and the churn experiments quantify.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Optional

import numpy as np
from numpy.typing import NDArray

from repro.ring.messages import MessageType
from repro.ring.network import RingNetwork
from repro.ring.node import PeerNode
from repro.ring.routing import successor_walk

__all__ = ["PrefixIndex", "build_prefix_index", "sample_by_rank"]


@dataclass(frozen=True)
class PrefixIndex:
    """Cumulative item counts at peer granularity, in ring order."""

    peer_ids: tuple[int, ...]
    cumulative_before: tuple[int, ...]  # items held by peers earlier in order
    counts: tuple[int, ...]

    def __post_init__(self) -> None:
        if not (len(self.peer_ids) == len(self.cumulative_before) == len(self.counts)):
            raise ValueError("index columns must have equal length")
        if not self.peer_ids:
            raise ValueError("index must cover at least one peer")

    @property
    def total(self) -> int:
        """Total items the index accounts for."""
        return self.cumulative_before[-1] + self.counts[-1]

    def locate(self, rank: int) -> tuple[int, int]:
        """Peer and local rank holding the global rank ``rank``.

        Returns ``(peer_id, local_rank)``.  ``rank`` must be in
        ``[0, total)``.
        """
        if not 0 <= rank < self.total:
            raise ValueError(f"rank {rank} outside [0, {self.total})")
        # Last peer whose cumulative start is <= rank; because rank < total,
        # that peer necessarily has a positive count covering the rank.
        index = bisect.bisect_right(self.cumulative_before, rank) - 1
        return self.peer_ids[index], rank - self.cumulative_before[index]


def build_prefix_index(
    network: RingNetwork, start: Optional[PeerNode] = None
) -> PrefixIndex:
    """Build the prefix-count index with one successor-ring traversal.

    Θ(N) messages (one walk hop plus one count exchange per peer).  The
    traversal starts at the first peer clockwise from ring position 0 so
    that ring order and value order coincide — required for the located
    item to be the true global order statistic.
    """
    if network.n_peers == 0:
        raise ValueError("cannot index an empty network")
    origin = network.node(network._oracle_successor(0))
    peers = [origin]
    for peer in successor_walk(network, origin, max(network.n_peers - 1, 0)):
        if peer.ident == origin.ident:
            break
        peers.append(peer)
    peer_ids: list[int] = []
    cumulative: list[int] = []
    counts: list[int] = []
    running = 0
    for peer in peers:
        network.record_rpc(
            MessageType.PREFIX_REQUEST, MessageType.PREFIX_REPLY, reply_payload=1
        )
        peer_ids.append(peer.ident)
        cumulative.append(running)
        counts.append(peer.store.count)
        running += peer.store.count
    return PrefixIndex(tuple(peer_ids), tuple(cumulative), tuple(counts))


def sample_by_rank(
    network: RingNetwork,
    index: PrefixIndex,
    count: int,
    rng: Optional[np.random.Generator] = None,
) -> NDArray[np.float64]:
    """Draw ``count`` inversion-method samples from the live network.

    Each draw: ``u ~ U(0,1)`` → global rank → locate peer in the index
    (client-local, free) → route to that peer (counted hops) → fetch the
    item of the residual local rank (one ``SAMPLE_FETCH`` exchange).

    Staleness handling: if the located peer has departed, the request is
    served by the current owner of its ring position; if the peer now holds
    fewer items than the residual rank (data moved or was lost), the rank
    is clamped to its last item; a peer that turns out empty contributes no
    sample (the draw is retried with a fresh ``u``, up to ``4 × count``
    attempts in total).
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if index.total <= 0:
        raise ValueError("index covers no items")
    generator = rng if rng is not None else network.rng
    samples: list[float] = []
    attempts = 0
    max_attempts = 4 * max(count, 1)
    from repro.ring.routing import route_to_key  # local import avoids cycle at module load

    while len(samples) < count and attempts < max_attempts:
        attempts += 1
        u = generator.uniform(0.0, 1.0)
        rank = min(int(u * index.total), index.total - 1)
        peer_id, local_rank = index.locate(rank)
        entry = network.random_peer()
        owner = route_to_key(network, entry, peer_id).owner
        network.record(MessageType.SAMPLE_FETCH, payload=1)
        if owner.store.count == 0:
            continue
        local_rank = min(local_rank, owner.store.count - 1)
        samples.append(owner.store.kth(local_rank))
    if len(samples) < count:
        raise RuntimeError(
            f"rank sampling produced only {len(samples)}/{count} samples; "
            "the index is too stale for this network"
        )
    return np.asarray(samples, dtype=float)
