"""Per-peer summaries: what one probe reply carries.

A probe that lands on a peer gets back a :class:`PeerSummary` — the peer's
segment length, its item count, and a constant-size histogram synopsis of
its local data.  This is the unit of evidence every estimator (ours and the
baselines) consumes; its size bounds per-probe bandwidth, which is why the
synopsis bucket count ``B`` is an explicit, ablatable parameter.

A peer whose ownership arc wraps the ring origin holds items from two
disjoint value ranges; its summary then carries two :class:`SegmentSummary`
pieces.  All other peers carry exactly one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np
from numpy.typing import NDArray

from repro.core.cdf import PiecewiseCDF
from repro.ring.compact import CompactRing
from repro.ring.network import RingNetwork
from repro.ring.node import PeerNode

__all__ = ["SegmentSummary", "PeerSummary", "summarize_peer", "summarize_compact"]


@dataclass(frozen=True)
class SegmentSummary:
    """Bucket synopsis of one contiguous value range of a peer.

    Buckets may be equi-width (the classic histogram, the default built by
    :meth:`equi_width`) or arbitrary — in particular the *equi-depth*
    buckets of :meth:`from_quantiles`, where bucket edges are local
    quantiles and counts are (nearly) equal.  Both carry the same payload
    (B+1 edges + B counts, with equi-width edges compressible to 2 values),
    but equi-depth buckets adapt their resolution to where the peer's data
    actually sits.
    """

    value_low: float
    value_high: float
    counts: NDArray[np.int64]                 # int64, one entry per bucket
    edges: NDArray[np.float64] | None = None    # B+1 boundaries; None = equi-width

    def __post_init__(self) -> None:
        if not self.value_low < self.value_high:
            raise ValueError(f"empty segment [{self.value_low}, {self.value_high})")
        if self.counts.ndim != 1 or self.counts.size < 1:
            raise ValueError("counts must be a non-empty 1-D array")
        if (self.counts < 0).any():
            raise ValueError("bucket counts must be non-negative")
        if self.edges is not None:
            if self.edges.shape != (self.counts.size + 1,):
                raise ValueError("edges must have one more entry than counts")
            if (self.edges[1:] < self.edges[:-1]).any():
                raise ValueError("edges must be non-decreasing")
            if not (
                abs(self.edges[0] - self.value_low) < 1e-12
                and abs(self.edges[-1] - self.value_high) < 1e-12
            ):
                raise ValueError("edges must span exactly [value_low, value_high]")

    @classmethod
    def equi_width(
        cls, value_low: float, value_high: float, counts: NDArray[np.int64]
    ) -> "SegmentSummary":
        """The classic equi-width histogram segment."""
        return cls(value_low, value_high, counts)

    @classmethod
    def from_quantiles(
        cls, value_low: float, value_high: float, values: NDArray[np.float64], buckets: int
    ) -> "SegmentSummary":
        """Equi-depth segment: edges at the local data's quantiles.

        ``values`` are the (sorted or unsorted) items inside the range.
        Edge ties from repeated values are kept non-decreasing; degenerate
        (zero-width) buckets represent point masses exactly.
        """
        if buckets < 1:
            raise ValueError(f"buckets must be >= 1, got {buckets}")
        arr = np.sort(np.asarray(values, dtype=float))
        if arr.size == 0:
            return cls(value_low, value_high, np.zeros(buckets, dtype=np.int64))
        # Boundary indices split the sorted items as evenly as possible.
        splits = np.linspace(0, arr.size, buckets + 1).round().astype(int)
        counts = np.diff(splits).astype(np.int64)
        inner_edges = [float(arr[min(i, arr.size - 1)]) for i in splits[1:-1]]
        edges = np.concatenate(([value_low], inner_edges, [value_high]))
        edges = np.maximum.accumulate(edges)
        edges = np.clip(edges, value_low, value_high)
        edges[0], edges[-1] = value_low, value_high
        return cls(value_low, value_high, counts, edges=edges)

    @property
    def total(self) -> int:
        """Items summarised by this segment."""
        return int(self.counts.sum())

    @property
    def buckets(self) -> int:
        """Synopsis resolution ``B``."""
        return int(self.counts.size)

    def bucket_edges(self) -> NDArray[np.float64]:
        """The ``B + 1`` bucket boundary values (memoized; treat as
        read-only — CDF assembly asks for the same edges once per probe
        that returns this segment)."""
        if self.edges is not None:
            return self.edges
        cached = self.__dict__.get("_edges_cache")
        if cached is None:
            cached = np.linspace(self.value_low, self.value_high, self.buckets + 1)
            object.__setattr__(self, "_edges_cache", cached)
        return cached

    def count_leq(self, x: float) -> float:
        """Estimated number of summarised items ``<= x``.

        Exact at bucket edges; linear (uniform-within-bucket) inside.
        Zero-width buckets (point masses in an equi-depth synopsis) count
        fully once ``x`` reaches them.
        """
        if x < self.value_low:
            return 0.0
        if x >= self.value_high:
            return float(self.total)
        edges = self.bucket_edges()
        index = int(np.searchsorted(edges, x, side="right")) - 1
        index = min(max(index, 0), self.buckets - 1)
        acc = float(self.counts[:index].sum())
        width = edges[index + 1] - edges[index]
        if width <= 0:
            return acc + float(self.counts[index])
        frac = (x - edges[index]) / width
        return acc + frac * float(self.counts[index])


@dataclass(frozen=True)
class PeerSummary:
    """Everything a probe reply reveals about one peer."""

    peer_id: int
    segment_length: int  # ℓ_p: ownership arc length in identifiers
    local_count: int     # c_p: items stored
    segments: tuple[SegmentSummary, ...]

    def __post_init__(self) -> None:
        if self.segment_length <= 0:
            raise ValueError(f"segment length must be positive, got {self.segment_length}")
        if self.local_count < 0:
            raise ValueError(f"local count must be >= 0, got {self.local_count}")
        if not 1 <= len(self.segments) <= 2:
            raise ValueError("a peer summary carries one or two value segments")
        summarised = sum(seg.total for seg in self.segments)
        if summarised != self.local_count:
            raise ValueError(
                f"synopsis covers {summarised} items but peer holds {self.local_count}"
            )

    @property
    def density(self) -> float:
        """Items per identifier, ``c_p / ℓ_p`` — the HT weight numerator."""
        return self.local_count / self.segment_length

    def count_leq(self, x: float) -> float:
        """Estimated count of this peer's items ``<= x``."""
        return sum(seg.count_leq(x) for seg in self.segments)

    def local_cdf(self, kind: str = "linear") -> PiecewiseCDF:
        """This peer's local data CDF (``H_p``), from the synopsis.

        A peer with no items contributes a degenerate CDF that is 0 across
        its segment and jumps to 1 at the right edge; estimators give such
        peers zero weight so the shape never matters.

        The summary is immutable, so the constructed CDF is memoized per
        ``kind``: assembling repeated estimates from memoized summaries
        (cache-hit probes, exact-census repetitions) reuses the same
        :class:`PiecewiseCDF` objects instead of rebuilding them.
        """
        cache = self.__dict__.get("_local_cdf_cache")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_local_cdf_cache", cache)
        cached = cache.get(kind)
        if cached is not None:
            return cached
        cdf = self._build_local_cdf(kind)
        cache[kind] = cdf
        return cdf

    def _build_local_cdf(self, kind: str) -> PiecewiseCDF:
        """Uncached :meth:`local_cdf` construction."""
        xs_parts: list[NDArray[np.float64]] = []
        fs_parts: list[NDArray[np.float64]] = []
        running = 0.0
        total = max(self.local_count, 1)
        for seg in sorted(self.segments, key=lambda s: s.value_low):
            edges = seg.bucket_edges()
            cumulative = running + np.concatenate(([0.0], np.cumsum(seg.counts)))
            xs_parts.append(edges)
            fs_parts.append(cumulative / total)
            running += seg.total
        xs = np.concatenate(xs_parts)
        fs = np.concatenate(fs_parts)
        # Collapse duplicate breakpoints keeping the *last* value at each x
        # so point masses (zero-width equi-depth buckets) keep their jump.
        keep = np.concatenate((np.diff(xs) > 0, [True]))
        if kind == "step":
            return PiecewiseCDF(xs[keep], fs[keep], kind="step")
        return PiecewiseCDF(xs[keep], fs[keep], kind="linear")


def summarize_peer(
    network: RingNetwork,
    node: PeerNode,
    buckets: int,
    kind: str = "equi-width",
) -> PeerSummary:
    """Build the probe reply a peer would send: its :class:`PeerSummary`.

    This is node-local work (no messages); the caller records the
    request/reply pair.  The peer's ring arc is translated into one or two
    value ranges through the network's order-preserving hash, and each range
    gets a ``buckets``-wide synopsis of the local items inside it —
    ``kind="equi-width"`` (classic histogram) or ``kind="equi-depth"``
    (edges at local quantiles; same payload, adaptive resolution).

    Replies are memoized per peer: a summary is a pure function of the
    peer's stored items, its ownership arc, and its (possibly Byzantine)
    reply behaviour, so the cached result is reused until any of those
    change — repeat probe hits and repeated full-census sweeps cost O(1)
    per peer instead of O(local items).  Invalidation keys on the store's
    mutation counter (:attr:`~repro.ring.storage.LocalStore.version`), the
    predecessor pointer that defines the arc, and the Byzantine marker.
    """
    if buckets < 1:
        raise ValueError(f"buckets must be >= 1, got {buckets}")
    if kind not in ("equi-width", "equi-depth"):
        raise ValueError(f"unknown synopsis kind {kind!r}")
    state = (node.store.version, node.predecessor_id, node.byzantine)
    cached = node.summary_cache.get((buckets, kind))
    if cached is not None and cached[0] == state:
        return cached[1]
    summary = _build_summary(network, node, buckets, kind)
    node.summary_cache[(buckets, kind)] = (state, summary)
    return summary


def _build_summary(
    network: RingNetwork,
    node: PeerNode,
    buckets: int,
    kind: str,
) -> PeerSummary:
    """The uncached summary construction behind :func:`summarize_peer`."""
    space = network.space
    data_hash = network.data_hash
    interval = node.interval
    low, high = network.domain

    def edge_value(ident: int) -> float:
        """Left edge of the value bucket owned *starting at* ``ident``."""
        return data_hash.to_value(ident)

    def nonempty(r_low: float, r_high: float) -> tuple[float, float]:
        """Widen a float-degenerate range minimally so it can hold a bucket."""
        if r_low < r_high:
            return (r_low, r_high)
        return (r_low, float(np.nextafter(r_low, np.inf)))

    if interval.start == interval.end:
        # Single peer: owns the whole ring, hence the whole domain.
        ranges = [(low, high)]
    elif interval.start < interval.end:
        # Keys in (start, end] correspond to values in
        # [value(start + 1), value(end + 1)) by monotonicity of the hash.
        after_end = space.add(interval.end, 1)
        range_high = high if after_end == 0 else edge_value(after_end)
        ranges = [nonempty(edge_value(interval.start + 1), range_high)]
    else:
        # Ownership wraps the ring origin: keys (start, 2^m - 1] then
        # [0, end], i.e. a value range at each end of the domain.
        ranges = []
        first_start = space.add(interval.start, 1)
        if first_start != 0:
            ranges.append(nonempty(edge_value(first_start), high))
        ranges.append(nonempty(low, edge_value(interval.end + 1)))

    def build_segment(r_low: float, r_high: float) -> SegmentSummary:
        if kind == "equi-depth":
            lo = node.store.rank_of(r_low)
            hi = node.store.rank_of(r_high)
            values = node.store.as_array()[lo:hi]
            return SegmentSummary.from_quantiles(r_low, r_high, values, buckets)
        return SegmentSummary.equi_width(
            r_low, r_high, node.store.histogram_range(r_low, r_high, buckets)
        )

    segments = tuple(build_segment(r_low, r_high) for r_low, r_high in ranges)
    # Items can sit outside the computed ranges only through float edge
    # effects; fold any stragglers into the nearest segment's edge bucket so
    # the summary's invariant (synopsis total == local count) always holds.
    summarised = sum(seg.total for seg in segments)
    if summarised != node.store.count:
        segments = _repair_segments(node, segments)
    summary = PeerSummary(
        peer_id=node.ident,
        segment_length=interval.length,
        local_count=node.store.count,
        segments=segments,
    )
    if node.byzantine is not None:
        # A lying peer answers with a fabricated reply (same geometry,
        # false counts) — see repro.core.byzantine.
        from repro.core.byzantine import fabricate_summary

        return fabricate_summary(summary, node.byzantine)
    return summary


def summarize_compact(
    ring: CompactRing,
    peer_indices: Union[Sequence[int], NDArray[np.int64]],
    buckets: int,
    kind: str = "equi-width",
) -> list[PeerSummary]:
    """Materialize probe replies from the compact ring's synopsis plane.

    The fast path behind batched probing on :class:`CompactRing`: each
    requested peer's :class:`PeerSummary` is a row slice of the plane —
    primary-segment bounds from the ``seg_low``/``seg_high`` columns,
    bucket counts from the ``(n, B)`` histogram matrix, and (for the one
    peer whose ownership wraps the ring origin) the high-end wrap segment
    in the same object-backend order.  Rows for uncached peers are gathered
    in one vectorized slice; summaries are memoized on the ring until the
    next :meth:`~repro.ring.compact.CompactRing.load_counts` invalidates
    them, exactly as :func:`summarize_peer` memoizes per store version.

    The plane is built at a fixed resolution, so ``buckets`` must equal
    ``ring.synopsis_buckets`` and only ``kind="equi-width"`` is available
    (equi-depth synopses need the raw values, which the compact backend
    deliberately does not keep).
    """
    if buckets < 1:
        raise ValueError(f"buckets must be >= 1, got {buckets}")
    if kind not in ("equi-width", "equi-depth"):
        raise ValueError(f"unknown synopsis kind {kind!r}")
    if kind != "equi-width":
        raise ValueError(
            "the compact backend keeps counts, not values; only "
            f"equi-width synopses are available, got kind={kind!r}"
        )
    if buckets != ring.synopsis_buckets:
        raise ValueError(
            f"the compact synopsis plane is built at B={ring.synopsis_buckets} "
            f"buckets; requested B={buckets} (rebuild the ring with "
            "synopsis_buckets to change the resolution)"
        )
    indices = np.asarray(peer_indices, dtype=np.int64)
    hist, wrap_hist = ring.synopsis_plane()
    summaries: dict[int, PeerSummary] = {}
    fresh = []
    for raw in indices:
        index = int(raw)
        if index in summaries:
            continue
        cached = ring.cached_summary(index)
        if cached is not None:
            summaries[index] = cached
        else:
            fresh.append(index)
    if fresh:
        fresh_arr = np.asarray(fresh, dtype=np.int64)
        rows = hist[fresh_arr]  # one gather for every uncached reply
        lows = ring.seg_low[fresh_arr]
        highs = ring.seg_high[fresh_arr]
        counts = ring.counts[fresh_arr]
        for offset, index in enumerate(fresh):
            primary = SegmentSummary.equi_width(
                float(lows[offset]), float(highs[offset]), rows[offset].copy()
            )
            if index == 0 and ring.wrap_bounds is not None:
                w_low, w_high = ring.wrap_bounds
                wrap_seg = SegmentSummary.equi_width(w_low, w_high, wrap_hist.copy())
                segments: tuple[SegmentSummary, ...] = (wrap_seg, primary)
            else:
                segments = (primary,)
            summary = PeerSummary(
                peer_id=int(ring.ids[index]),
                segment_length=ring.segment_length(index),
                local_count=int(counts[offset]),
                segments=segments,
            )
            ring.cache_summary(index, summary)
            summaries[index] = summary
    return [summaries[int(index)] for index in indices]


def _repair_segments(
    node: PeerNode, segments: tuple[SegmentSummary, ...]
) -> tuple[SegmentSummary, ...]:
    """Reassign items missed by float boundary rounding to edge buckets."""
    repaired = [np.array(seg.counts, copy=True) for seg in segments]
    for value in node.store:
        for seg_index, seg in enumerate(segments):
            if seg.value_low <= value < seg.value_high:
                break
        else:
            # Attach to the segment whose boundary is closest.
            distances = [
                min(abs(value - seg.value_low), abs(value - seg.value_high))
                for seg in segments
            ]
            seg_index = int(np.argmin(distances))
            seg = segments[seg_index]
            bucket = 0 if value < seg.value_low else seg.buckets - 1
            repaired[seg_index][bucket] += 1
    # Rebuild only segments whose counts changed; recompute via histogram
    # for the rest is unnecessary since counts were copied.  Explicit edges
    # (equi-depth synopses) are preserved.
    rebuilt = []
    for seg, counts in zip(segments, repaired):
        rebuilt.append(
            SegmentSummary(seg.value_low, seg.value_high, counts, edges=seg.edges)
        )
    return tuple(rebuilt)
