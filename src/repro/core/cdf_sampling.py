"""Sampling the global CDF — the paper's core mechanism.

The cheap estimation path probes ``s ≪ N`` ring positions.  Each probe is a
routed lookup to the peer owning a position, answered with that peer's
:class:`~repro.core.synopsis.PeerSummary`.  Because a uniform ring position
lands on a peer with probability proportional to its segment length
``ℓ_p``, pooling the replies *unweighted* is biased; the Horvitz–Thompson
correction (weight ``∝ c_p / ℓ_p``) makes the pooled estimate

    F̂(x) = Σ_i w_i · H_i(x),   w_i = (c_i/ℓ_i) / Σ_j (c_j/ℓ_j)

an asymptotically unbiased, distribution-free estimate of the global CDF —
``H_i`` being peer ``i``'s local CDF from its synopsis.  The same probes
yield, for free, the total-count estimate ``n̂ = (2^m/s) Σ c_i/ℓ_i`` and
the network-size estimate ``N̂ = (2^m/s) Σ 1/ℓ_i``.

Probe placement is pluggable: iid uniform positions (the baseline analysed
above) or a stratified grid with jitter (same unbiasedness, lower variance
— an ablation the benchmarks measure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Literal, Optional, Sequence

import numpy as np
from numpy.typing import NDArray

from repro.core.backend import RingBackend
from repro.core.cdf import PiecewiseCDF
from repro.core.synopsis import (
    PeerSummary,
    SegmentSummary,
    summarize_compact,
    summarize_peer,
)
from repro.ring.compact import CompactRing
from repro.ring.messages import MessageType
from repro.ring.network import RingNetwork
from repro.ring.routing import route_probes_batch, route_to_key

if TYPE_CHECKING:  # runtime import stays local to avoid a module cycle
    from repro.ring.faults import RetryPolicy

__all__ = [
    "ProbeResult",
    "ProbeFailure",
    "probe_positions",
    "collect_probes",
    "collect_probes_at",
    "collect_probes_resilient",
    "ht_weights",
    "estimate_total_items",
    "estimate_peer_count",
    "assemble_cdf",
    "assemble_cdf_interpolated",
    "InterpolatedReconstruction",
]

Placement = Literal["uniform", "stratified"]


@dataclass(frozen=True)
class ProbeResult:
    """One answered probe: where it went, what came back, what it cost."""

    target: int
    summary: PeerSummary
    hops: int


@dataclass(frozen=True)
class ProbeFailure:
    """One probe that did not come back: where it went and why it failed.

    ``reason`` is the routing failure class (see
    :class:`~repro.ring.routing.RouteOutcome`) or ``"reply_lost"`` when the
    owner was reached but the request/reply exchange exhausted its retry
    budget.  ``hops`` is what the failed attempt still cost — failures are
    paid for, and the ledger reflects them.
    """

    target: int
    reason: str
    hops: int


def probe_positions(
    count: int,
    ring_size: int,
    rng: np.random.Generator,
    placement: Placement = "uniform",
) -> NDArray[np.uint64]:
    """Ring positions to probe.

    ``uniform``: iid uniform draws — the textbook HT design.
    ``stratified``: one uniform draw inside each of ``count`` equal strata —
    identical marginal distribution (hence identical unbiasedness) with
    strictly smaller variance for any monotone integrand.
    """
    if count < 1:
        raise ValueError(f"need at least one probe, got {count}")
    if placement == "uniform":
        return rng.integers(0, ring_size, size=count, dtype=np.uint64)
    if placement == "stratified":
        stratum = ring_size / count
        offsets = rng.uniform(0.0, 1.0, size=count)
        positions = ((np.arange(count) + offsets) * stratum).astype(np.uint64)
        return np.minimum(positions, np.uint64(ring_size - 1))
    raise ValueError(f"unknown placement {placement!r}")


def collect_probes(
    network: RingBackend,
    count: int,
    buckets: int,
    rng: Optional[np.random.Generator] = None,
    placement: Placement = "uniform",
    synopsis_kind: str = "equi-width",
) -> list[ProbeResult]:
    """Route ``count`` probes and gather peer summaries.

    Each probe starts at a uniformly chosen entry peer (as a real client
    would), routes to the target position (counted hops), and exchanges one
    request/reply pair with the owner.  Repeat hits on the same peer are
    kept — deduplicating would break the Horvitz–Thompson design.

    Works against either backend: on a :class:`CompactRing` the probes
    route in one vectorized batch and replies slice the columnar synopsis
    plane, with targets, entry draws, hop counts, reply contents, and
    ledger records all bit-identical to the object backend at the same
    seed.
    """
    generator = rng if rng is not None else network.rng
    targets = probe_positions(count, network.space.size, generator, placement)
    return collect_probes_at(network, targets, buckets, synopsis_kind)


def collect_probes_at(
    network: RingBackend,
    targets: Sequence[int],
    buckets: int,
    synopsis_kind: str = "equi-width",
) -> list[ProbeResult]:
    """Probe explicit ring positions (used by adaptive refinement).

    With reliable delivery (``loss_rate == 0``) the batch fast path is
    taken: every probe's entry peer is drawn up front (the same generator
    draws, in the same order, as the one-at-a-time path — routing consumes
    no randomness when nothing is lost), the probes are routed, and the
    request/reply traffic is posted to the ledger in two bulk records
    instead of two Python calls per probe.  Totals, hop counts, and reply
    contents are identical to the sequential path.  Under the loss model
    the sequential path runs, preserving the exact interleaving of
    retransmission draws.  A :class:`CompactRing` (always loss-free) takes
    the columnar batch path.
    """
    if isinstance(network, CompactRing):
        return _collect_probes_compact(network, targets, buckets, synopsis_kind)
    if network.loss_rate <= 0.0:
        return _collect_probes_batch(network, targets, buckets, synopsis_kind)
    results: list[ProbeResult] = []
    for target in targets:
        entry = network.random_peer()
        route = route_to_key(network, entry, int(target))
        # Reply payload: the B-bucket synopsis plus (segment length, count).
        # Under the loss model, a lost request or reply is retransmitted
        # end to end; every attempt is paid for.
        while True:
            network.record(MessageType.PROBE_REQUEST)
            if not network.delivery_succeeds():
                continue
            network.record(MessageType.PROBE_REPLY, payload=buckets + 2)
            if network.delivery_succeeds():
                break
        summary = summarize_peer(network, route.owner, buckets, kind=synopsis_kind)
        results.append(ProbeResult(target=int(target), summary=summary, hops=route.hops))
    return results


def collect_probes_resilient(
    network: RingBackend,
    targets: Sequence[int],
    buckets: int,
    synopsis_kind: str = "equi-width",
    policy: Optional[RetryPolicy] = None,
) -> tuple[list[ProbeResult], list[ProbeFailure]]:
    """Probe explicit ring positions, reporting failures instead of raising.

    The fault-aware counterpart of :func:`collect_probes_at`: every probe
    routes through :func:`~repro.ring.routing.route_with_policy` (which
    consults the network's fault plane and the retry policy's budgets), and
    probes that cannot be answered come back as :class:`ProbeFailure`
    entries rather than exceptions.  The request/reply exchange itself is
    also bounded: a leg lost more than ``policy.max_attempts`` times turns
    the probe into a ``"reply_lost"`` failure.  All cost — including the
    cost of the failures — lands in the message ledger as usual.

    ``policy=None`` selects :data:`~repro.ring.faults.RetryPolicy.DEFAULT`
    (bounded attempts): a resilient collection exists to terminate under
    faults, so unbounded retry must be requested explicitly.

    The compact backend has no fault plane (it models the stabilized
    loss-free ring), so resilient collection there is the batch fast path
    with an empty failure list — callers keep one code path for both
    backends.
    """
    if isinstance(network, CompactRing):
        return _collect_probes_compact(network, targets, buckets, synopsis_kind), []
    from repro.ring.faults import RetryPolicy
    from repro.ring.routing import route_with_policy

    if policy is None:
        policy = RetryPolicy.DEFAULT
    results: list[ProbeResult] = []
    failures: list[ProbeFailure] = []
    for target in targets:
        if network.n_peers == 0:
            failures.append(ProbeFailure(target=int(target), reason="empty_ring", hops=0))
            continue
        entry = network.random_peer()
        outcome = route_with_policy(network, entry, int(target), policy=policy)
        if not outcome.ok or outcome.owner is None:
            failures.append(
                ProbeFailure(
                    target=int(target), reason=outcome.failure or "failed", hops=outcome.hops
                )
            )
            continue
        delivered = False
        attempts = 0
        while True:
            attempts += 1
            network.record(MessageType.PROBE_REQUEST)
            if network.delivery_succeeds():
                network.record(MessageType.PROBE_REPLY, payload=buckets + 2)
                if network.delivery_succeeds():
                    delivered = True
                    break
            if policy.max_attempts is not None and attempts >= policy.max_attempts:
                break
        if not delivered:
            failures.append(
                ProbeFailure(target=int(target), reason="reply_lost", hops=outcome.hops)
            )
            continue
        summary = summarize_peer(network, outcome.owner, buckets, kind=synopsis_kind)
        results.append(ProbeResult(target=int(target), summary=summary, hops=outcome.hops))
    return results, failures


def _collect_probes_batch(
    network: RingNetwork,
    targets: Sequence[int],
    buckets: int,
    synopsis_kind: str,
) -> list[ProbeResult]:
    """Loss-free probe batch: lockstep routing, bulk ledger, memoized summaries."""
    entries = [network.random_peer() for _ in range(len(targets))]
    routes = route_probes_batch(network, entries, [int(target) for target in targets])
    results: list[ProbeResult] = []
    for route, target in zip(routes, targets):
        summary = summarize_peer(network, route.owner, buckets, kind=synopsis_kind)
        results.append(ProbeResult(target=int(target), summary=summary, hops=route.hops))
    if results:
        network.record(MessageType.PROBE_REQUEST, count=len(results))
        network.record(
            MessageType.PROBE_REPLY,
            count=len(results),
            payload=(buckets + 2) * len(results),
        )
    return results


def _collect_probes_compact(
    ring: CompactRing,
    targets: Sequence[int],
    buckets: int,
    synopsis_kind: str,
) -> list[ProbeResult]:
    """Columnar probe batch: vectorized routing, row-sliced summaries.

    Entry peers come from one vectorized draw against the ring's generator
    — NumPy's bounded-integer sampling produces the same stream as the
    object path's per-probe scalar draws, so probe trajectories match the
    object backend bit for bit at the same seed.  Routing runs in lockstep
    through :meth:`CompactRing.route_batch` (which posts the bulk
    ``LOOKUP_HOP`` record), replies are sliced from the synopsis plane by
    :func:`summarize_compact`, and the request/reply traffic lands in the
    ledger as the same two bulk records the object batch path posts.
    """
    count = len(targets)
    if count == 0:
        return []
    entries = ring.rng.integers(0, ring.n_peers, size=count).astype(np.int64)
    keys = np.asarray([int(target) for target in targets], dtype=np.uint64)
    owners, hops = ring.route_batch(entries, keys)
    summaries = summarize_compact(ring, owners, buckets, kind=synopsis_kind)
    results = [
        ProbeResult(target=int(target), summary=summary, hops=int(hop_count))
        for target, summary, hop_count in zip(targets, summaries, hops)
    ]
    if results:
        ring.record(MessageType.PROBE_REQUEST, count=len(results))
        ring.record(
            MessageType.PROBE_REPLY,
            count=len(results),
            payload=(buckets + 2) * len(results),
        )
    return results


def ht_weights(summaries: Sequence[PeerSummary]) -> NDArray[np.float64]:
    """Normalised Horvitz–Thompson weights ``w_i ∝ c_i / ℓ_i``.

    Peers with no data get weight zero.  Raises if *all* probed peers are
    empty — there is then no evidence to build a distribution from.
    """
    raw = np.asarray([s.density for s in summaries], dtype=float)
    total = raw.sum()
    if total <= 0:
        raise ValueError("all probed peers were empty; cannot estimate a distribution")
    return raw / total


def estimate_total_items(summaries: Sequence[PeerSummary], ring_size: int) -> float:
    """Unbiased estimate of the global item count, ``n̂ = (2^m/s) Σ c/ℓ``."""
    if not summaries:
        raise ValueError("need at least one probe summary")
    densities = np.asarray([s.density for s in summaries], dtype=float)
    return float(ring_size * densities.mean())


def estimate_peer_count(summaries: Sequence[PeerSummary], ring_size: int) -> float:
    """Unbiased estimate of the live peer count, ``N̂ = (2^m/s) Σ 1/ℓ``."""
    if not summaries:
        raise ValueError("need at least one probe summary")
    inverse_lengths = np.asarray([1.0 / s.segment_length for s in summaries], dtype=float)
    return float(ring_size * inverse_lengths.mean())


def assemble_cdf(
    summaries: Sequence[PeerSummary],
    weights: Sequence[float],
    domain: tuple[float, float],
    interpolation: Literal["linear", "step"] = "linear",
) -> PiecewiseCDF:
    """Combine per-peer local CDFs into the global estimate ``Σ w_i H_i``.

    The result is pinned to the domain: ``F̂(low) = 0`` and
    ``F̂(high) = 1`` exactly, so downstream quantile/selectivity queries
    behave at the edges even when no probe landed there.
    """
    weight_arr = np.asarray(weights, dtype=float)
    if len(summaries) != weight_arr.size:
        raise ValueError("one weight per summary required")
    active = [
        (summary, w)
        for summary, w in zip(summaries, weight_arr)
        if w > 0 and summary.local_count > 0
    ]
    if not active:
        raise ValueError("no probed peer carried any data")
    components = [summary.local_cdf(kind=interpolation) for summary, _ in active]
    mixture = PiecewiseCDF.mixture(components, [w for _, w in active], kind=interpolation)

    low, high = domain
    xs = mixture.xs
    fs = mixture.fs
    if xs[0] > low:
        xs = np.concatenate(([low], xs))
        fs = np.concatenate(([0.0], fs))
    if xs[-1] < high:
        xs = np.concatenate((xs, [high]))
        fs = np.concatenate((fs, [1.0]))
    fs = fs / fs[-1] if fs[-1] > 0 else fs
    return PiecewiseCDF(xs, fs, kind=mixture.kind)


@dataclass(frozen=True)
class InterpolatedReconstruction:
    """Result of :func:`assemble_cdf_interpolated`.

    ``total_items`` is the integral of the reconstructed absolute density —
    itself an estimate of the global data volume (exact over probed
    segments, interpolated over gaps).  ``gap_masses`` lists, per
    inter-segment gap, ``(gap_start_value, gap_end_value, estimated_mass)``
    — the information adaptive refinement allocates follow-up probes by.
    """

    cdf: PiecewiseCDF
    total_items: float
    gap_masses: tuple[tuple[float, float, float], ...]


def _gap_mass(d_left: float, d_right: float, width: float, mode: str) -> float:
    """Estimated item mass of an unprobed gap from its edge densities.

    ``linear`` uses the trapezoid rule; ``log`` uses the logarithmic mean
    (exact for exponentially varying density, better for heavy tails).
    """
    if width <= 0:
        return 0.0
    if mode == "linear" or d_left <= 0 or d_right <= 0:
        return 0.5 * (d_left + d_right) * width
    if mode != "log":
        raise ValueError(f"unknown gap interpolation mode {mode!r}")
    log_ratio = np.log(d_right / d_left)
    if abs(log_ratio) < 1e-9:
        return d_left * width
    return width * (d_right - d_left) / log_ratio


def assemble_cdf_interpolated(
    summaries: Sequence[PeerSummary],
    domain: tuple[float, float],
    gap_interpolation: Literal["linear", "log"] = "linear",
) -> InterpolatedReconstruction:
    """Reconstruct the global CDF by density interpolation — the default.

    Probed segments contribute their *exact* synopsis counts; the unprobed
    gaps between them get mass interpolated from the adjacent segments'
    edge densities (the ring wrap makes the leading and trailing domain
    gaps one logical gap).  Compared with the pure HT mixture
    (:func:`assemble_cdf`), this uses the same evidence but does not assume
    zero mass off the probed segments, cutting variance several-fold on
    smooth densities while remaining distribution-free: no parametric form
    is assumed anywhere, and the reconstruction converges to the exact
    global CDF as probes cover the ring.

    Duplicate summaries of the same peer are collapsed (repeat probes add
    no evidence to a reconstruction).
    """
    if gap_interpolation not in ("linear", "log"):
        raise ValueError(f"unknown gap interpolation mode {gap_interpolation!r}")
    unique: dict[int, PeerSummary] = {}
    for summary in summaries:
        unique[summary.peer_id] = summary
    segments = sorted(
        (seg for s in unique.values() for seg in s.segments),
        key=lambda seg: seg.value_low,
    )
    if not segments:
        raise ValueError("no probe evidence to reconstruct from")
    low, high = domain

    def edge_densities(seg: SegmentSummary) -> tuple[float, float]:
        """Densities (items per value unit) at both edges of a segment.

        Each side uses its outermost bucket with positive width (equi-depth
        synopses can carry zero-width point-mass buckets whose density is
        not finite); falls back to the segment's average density.  Memoized
        on the segment — cached summaries resurface the same segment
        objects across assemblies, and the pair is a pure function of one.
        """
        cached = seg.__dict__.get("_edge_density_pair")
        if cached is not None:
            return cached
        edges = seg.bucket_edges()
        pair = []
        for indices in (range(seg.buckets), range(seg.buckets - 1, -1, -1)):
            density = None
            for index in indices:
                width = float(edges[index + 1] - edges[index])
                if width > 0:
                    density = float(seg.counts[index]) / width
                    break
            if density is None:
                span = seg.value_high - seg.value_low
                density = float(seg.total) / span if span > 0 else 0.0
            pair.append(density)
        cached = (pair[0], pair[1])
        object.__setattr__(seg, "_edge_density_pair", cached)
        return cached

    # Breakpoints accumulate as a flat delta sequence folded into one
    # ``np.add.accumulate`` at the end: a ufunc accumulate is strictly
    # sequential (unlike ``np.sum``'s pairwise reduction), so the float
    # additions happen in exactly the order the old scalar loop used and
    # the partial sums are bit-identical.
    xs: list[float] = [low]
    deltas: list[float] = [0.0]
    gaps: list[tuple[float, float, float]] = []

    # The ring is a cycle: the gap after the last segment wraps into the
    # gap before the first one.  Their interpolation endpoints therefore
    # come from the last and first probed segments respectively.
    lead_gap = segments[0].value_low - low
    trail_gap = high - segments[-1].value_high
    wrap_width = max(lead_gap, 0.0) + max(trail_gap, 0.0)
    d_wrap_left = edge_densities(segments[-1])[1]
    d_wrap_right = edge_densities(segments[0])[0]
    wrap_mass = _gap_mass(d_wrap_left, d_wrap_right, wrap_width, gap_interpolation)

    if lead_gap > 0:
        share = lead_gap / wrap_width if wrap_width > 0 else 0.0
        lead_mass = wrap_mass * share
        xs.append(segments[0].value_low)
        deltas.append(lead_mass)
        gaps.append((low, segments[0].value_low, lead_mass))

    prev_end = segments[0].value_low
    prev_density = None
    for seg in segments:
        d_left, d_right = edge_densities(seg)
        if seg.value_low > prev_end and prev_density is not None:
            width = seg.value_low - prev_end
            mass = _gap_mass(prev_density, d_left, width, gap_interpolation)
            xs.append(seg.value_low)
            deltas.append(mass)
            gaps.append((prev_end, seg.value_low, mass))
        # Per-segment breakpoints, memoized (cached summaries reuse their
        # segment objects): the inner-edge x values and float bucket
        # counts, which join the global delta sequence verbatim.
        memo = seg.__dict__.get("_breakpoints_cache")
        if memo is None:
            memo = (
                seg.bucket_edges()[1:].astype(float).tolist(),
                seg.counts.astype(float).tolist(),
            )
            object.__setattr__(seg, "_breakpoints_cache", memo)
        inner_edges, float_counts = memo
        xs.extend(inner_edges)
        deltas.extend(float_counts)
        prev_end = max(prev_end, seg.value_high)
        prev_density = d_right

    if trail_gap > 0:
        share = trail_gap / wrap_width if wrap_width > 0 else 0.0
        trail_mass = wrap_mass * share
        xs.append(high)
        deltas.append(trail_mass)
        gaps.append((segments[-1].value_high, high, trail_mass))

    xs_arr = np.asarray(xs, dtype=float)
    cum_arr = np.add.accumulate(np.asarray(deltas, dtype=float))
    # Collapse duplicate breakpoints keeping the *last* cumulative value at
    # each x, so no mass is dropped when a degenerate piece has zero width.
    keep = np.concatenate((np.diff(xs_arr) > 0, [True]))
    xs_arr, cum_arr = xs_arr[keep], np.maximum.accumulate(cum_arr[keep])
    total = float(cum_arr[-1])
    if total <= 0:
        raise ValueError("all probed peers were empty; cannot estimate a distribution")
    cdf = PiecewiseCDF(xs_arr, cum_arr / total, kind="linear")
    return InterpolatedReconstruction(
        cdf=cdf, total_items=total, gap_masses=tuple(gaps)
    )
