"""The inversion method for random-variate generation.

Given any CDF ``F`` and ``U ~ Uniform(0,1)``, the variate ``F⁻¹(U)`` is
distributed according to ``F`` — for *any* distribution, which is what
makes the paper's pipeline distribution-free end to end: estimate the
global CDF once, then generate arbitrarily many unbiased samples locally.

:class:`InversionSampler` wraps a CDF with a reusable generator and adds
the two classic variance-reduction designs (antithetic pairs and
stratified uniforms), both of which preserve marginal correctness.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from numpy.typing import NDArray

from repro.core.cdf import PiecewiseCDF

__all__ = ["InversionSampler", "inverse_transform_sample"]


def inverse_transform_sample(
    cdf: PiecewiseCDF, n: int, rng: Optional[np.random.Generator] = None
) -> NDArray[np.float64]:
    """Draw ``n`` variates from ``cdf`` by plain inversion."""
    if n < 0:
        raise ValueError(f"sample size must be >= 0, got {n}")
    # Seeded default: draws without an explicit generator must still
    # replay identically run to run.
    generator = rng if rng is not None else np.random.default_rng(0)
    return cdf.sample(n, generator)


class InversionSampler:
    """A reusable inversion-method sampler over a fixed CDF."""

    def __init__(self, cdf: PiecewiseCDF, rng: Optional[np.random.Generator] = None) -> None:
        self.cdf = cdf
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def sample(self, n: int) -> NDArray[np.float64]:
        """``n`` iid variates."""
        if n < 0:
            raise ValueError(f"sample size must be >= 0, got {n}")
        return self.cdf.sample(n, self.rng)

    def sample_antithetic(self, n: int) -> NDArray[np.float64]:
        """``n`` variates from antithetic uniform pairs ``(u, 1-u)``.

        Marginally identical to iid sampling; negatively correlated pairs
        reduce the variance of smooth sample statistics.  Odd ``n`` gets
        one extra unpaired draw.
        """
        if n < 0:
            raise ValueError(f"sample size must be >= 0, got {n}")
        half = (n + 1) // 2
        u = self.rng.uniform(0.0, 1.0, size=half)
        uniforms = np.concatenate([u, 1.0 - u])[:n]
        return np.asarray(self.cdf.inverse(uniforms), dtype=float)

    def sample_stratified(self, n: int) -> NDArray[np.float64]:
        """``n`` variates from stratified uniforms (one per equal stratum).

        Guarantees even coverage of the quantile axis — useful when a small
        sample must still see the distribution's tails.
        """
        if n < 0:
            raise ValueError(f"sample size must be >= 0, got {n}")
        if n == 0:
            return np.empty(0, dtype=float)
        offsets = self.rng.uniform(0.0, 1.0, size=n)
        uniforms = (np.arange(n) + offsets) / n
        variates = np.asarray(self.cdf.inverse(uniforms), dtype=float)
        return self.rng.permutation(variates)
