"""Estimator facade: the protocol and the paper's estimator.

Every estimation method in the repository — the paper's distribution-free
estimator and all four baselines — implements :class:`DensityEstimator`:
given a live network, return a :class:`~repro.core.estimate.DensityEstimate`.
Experiments treat methods uniformly through this protocol, so accuracy and
cost comparisons are apples-to-apples by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Literal, Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.core.backend import RingBackend
from repro.core.cdf_sampling import (
    assemble_cdf,
    assemble_cdf_interpolated,
    collect_probes,
    collect_probes_resilient,
    estimate_peer_count,
    estimate_total_items,
    ht_weights,
    probe_positions,
)
from repro.core.estimate import DegradedEstimate, DensityEstimate, zero_evidence_estimate
from repro.core.robust import (
    RobustMethod,
    robust_assemble,
    validate_mom_groups,
    validate_robust_method,
    validate_trim_fraction,
    winsorize_summaries,
)
from repro.ring.faults import RetryPolicy

if TYPE_CHECKING:  # runtime imports stay local to avoid module cycles
    from repro.core.cdf import PiecewiseCDF
    from repro.core.confidence import ConfidenceBand
    from repro.core.synopsis import PeerSummary

__all__ = ["DensityEstimator", "DistributionFreeEstimator"]


@runtime_checkable
class DensityEstimator(Protocol):
    """Anything that can estimate the global data distribution.

    ``network`` is either ring backend (:data:`~repro.core.backend.RingBackend`).
    The paper's estimators accept both; the epidemic/census baselines need
    the object backend's node graph and document that narrower requirement
    themselves.
    """

    name: str

    def estimate(
        self, network: RingBackend, rng: Optional[np.random.Generator] = None
    ) -> DensityEstimate:
        """Produce an estimate against the network's current state."""
        ...


@dataclass(frozen=True)
class DistributionFreeEstimator:
    """The paper's estimator: sample the global CDF with HT-corrected probes.

    Parameters
    ----------
    probes:
        Number of ring positions to probe (``s``).  Accuracy scales as
        ``O(1/√s)``; cost scales linearly in ``s`` (each probe is one
        O(log N)-hop lookup plus a constant-size reply).
    synopsis_buckets:
        Histogram resolution ``B`` of each probe reply.  Bounds per-reply
        bandwidth; larger ``B`` sharpens the estimate *within* probed
        segments.
    placement:
        ``"uniform"`` for iid probe positions (the analysed design) or
        ``"stratified"`` for variance-reduced stratified placement.
    synopsis_kind:
        ``"equi-width"`` buckets (the classic histogram reply) or
        ``"equi-depth"`` buckets (edges at the peer's local quantiles —
        same payload, resolution that follows the data; sharper on skewed
        or atom-heavy local distributions).
    combine:
        How probe replies become the global CDF.  ``"interpolate"``
        (default) reconstructs the density — exact over probed segments,
        edge-density interpolation over gaps; lowest error per probe.
        ``"mixture"`` is the pure Horvitz–Thompson weighted mixture of
        local CDFs — design-unbiased, higher variance; kept as the
        analysable reference and as an ablation.
    interpolation:
        ``"linear"`` (uniform-within-bucket, the default) or ``"step"``
        (mass at bucket edges) assembly of local CDFs in mixture mode.
    gap_interpolation:
        Gap-mass rule in interpolate mode: ``"linear"`` (trapezoid) or
        ``"log"`` (logarithmic mean, exact for exponential density decay).
    trim_density_ratio:
        When set, replies whose implied density exceeds this multiple of
        the batch median are discarded before assembly — the pollution
        defense of :mod:`repro.core.byzantine`.  ``None`` trusts every
        reply (the default).  Must exceed 1 when set — a ratio at or below
        1 would discard every reply denser than the neighbourhood median.
    robust:
        Robust combiner over the probe replies (see :mod:`repro.core.robust`).
        ``None`` (default) is the trusting estimator.  ``"winsorized"``
        clamps over-dense replies to the batch's ``(1 - trim_fraction)``
        density quantile and then assembles normally — it transforms the
        evidence, not the weights, so it composes with either ``combine``
        mode and is the recommended hardening under order-preserving
        placement.  ``"trimmed"`` discards the ``trim_fraction``
        highest- and lowest-density replies before HT weighting;
        ``"median-of-means"`` splits the batch into ``mom_groups`` groups
        and takes the pointwise median of the per-group mixtures.  Those
        two force mixture-family assembly (the robust statistics operate
        on per-reply weights, which the interpolated reconstruction does
        not have) and ``combine`` is ignored while they are active.  All
        compose with ``trim_density_ratio``: the density trim runs first.
    trim_fraction:
        Per-side trim fraction for ``robust="trimmed"`` and the cap
        quantile for ``robust="winsorized"``; in ``[0, 0.5)``.
    mom_groups:
        Group count for ``robust="median-of-means"``; at least 1.  The
        median resists pollution only while a majority of groups is
        liar-free, so keep groups small enough that
        ``1 - (1-ε)^(probes/groups) < 1/2`` at the liar fraction ``ε`` you
        defend against — the default 16 covers ``ε ≈ 0.1`` at 64 probes.
    retry:
        Explicit :class:`~repro.ring.faults.RetryPolicy` for the probe
        lookups.  Setting it (or attaching an active fault plane to the
        network) switches estimation onto the resilient path: probes that
        fail are reported, not raised, and the result is a
        :class:`~repro.core.estimate.DegradedEstimate` carrying the
        realised coverage and a widened confidence band whenever any probe
        was lost.  ``None`` on a fault-free network is the legacy path,
        bit-identical to before this field existed.
    """

    probes: int = 64
    synopsis_buckets: int = 8
    synopsis_kind: Literal["equi-width", "equi-depth"] = "equi-width"
    placement: Literal["uniform", "stratified"] = "uniform"
    combine: Literal["interpolate", "mixture"] = "interpolate"
    interpolation: Literal["linear", "step"] = "linear"
    gap_interpolation: Literal["linear", "log"] = "linear"
    trim_density_ratio: Optional[float] = None
    robust: Optional[RobustMethod] = None
    trim_fraction: float = 0.1
    mom_groups: int = 16
    retry: Optional[RetryPolicy] = None
    name: str = "distribution-free"

    def __post_init__(self) -> None:
        if self.probes < 1:
            raise ValueError(f"probes must be >= 1, got {self.probes}")
        if self.synopsis_buckets < 1:
            raise ValueError(f"synopsis_buckets must be >= 1, got {self.synopsis_buckets}")
        if self.combine not in ("interpolate", "mixture"):
            raise ValueError(f"unknown combine mode {self.combine!r}")
        if self.trim_density_ratio is not None and self.trim_density_ratio <= 1.0:
            raise ValueError(
                f"trim_density_ratio must be > 1, got {self.trim_density_ratio}"
            )
        validate_robust_method(self.robust)
        validate_trim_fraction(self.trim_fraction)
        validate_mom_groups(self.mom_groups)

    def estimate(
        self, network: RingBackend, rng: Optional[np.random.Generator] = None
    ) -> DensityEstimate:
        """Probe the network and assemble the distribution-free estimate.

        On a fault-free network with no explicit retry policy this is the
        legacy fast path.  With faults active (or ``retry`` set) the
        resilient path runs instead, and terminal no-evidence conditions —
        an empty ring, or a ring where no probed peer carried data — come
        back as a zero-evidence :class:`DegradedEstimate` rather than an
        exception.
        """
        faults = network.faults
        if (
            self.retry is not None
            or (faults is not None and faults.active)
            or network.n_peers == 0
        ):
            return self._estimate_degraded(network, rng)
        before = network.stats.snapshot()
        results = collect_probes(
            network,
            self.probes,
            self.synopsis_buckets,
            rng=rng,
            placement=self.placement,
            synopsis_kind=self.synopsis_kind,
        )
        summaries = [r.summary for r in results]
        if self.trim_density_ratio is not None:
            from repro.core.byzantine import trim_outlier_summaries

            summaries = trim_outlier_summaries(summaries, self.trim_density_ratio)
        try:
            cdf, n_items = self._assemble(summaries, network)
        except ValueError:
            # Every probed peer was empty: no distribution to reconstruct.
            # Degrade to the explicit zero-evidence prior instead of
            # propagating the assembly error to the caller.
            return zero_evidence_estimate(
                network.domain,
                before.delta(network.stats.snapshot()),
                self.name,
                self.probes,
                ("no_evidence",),
            )
        cost = before.delta(network.stats.snapshot())
        # Probes are independent lookups a client issues concurrently:
        # the critical path is the slowest probe plus its request/reply.
        latency = max(r.hops for r in results) + 2
        return DensityEstimate(
            cdf=cdf,
            domain=network.domain,
            n_items=n_items,
            n_peers=estimate_peer_count(summaries, network.space.size),
            probes=len(summaries),
            cost=cost,
            method=self.name,
            latency_rounds=float(latency),
        )

    def _assemble(
        self, summaries: Sequence[PeerSummary], network: RingBackend
    ) -> tuple["PiecewiseCDF", float]:
        """Assemble ``(F̂, n̂)`` from probe replies per the configured policy.

        Trusting assembly (``robust=None``) reproduces the historical
        operation order exactly — both estimation paths share this body, so
        the factoring is byte-neutral.  A configured robust method routes
        to :func:`repro.core.robust.robust_assemble` instead.  Raises
        ``ValueError`` on zero usable evidence in every mode.
        """
        if self.robust == "winsorized":
            # Winsorization transforms the evidence, not the weights, so
            # it hardens whichever assembly is configured — including the
            # interpolated reconstruction the other combiners cannot use.
            summaries = winsorize_summaries(summaries, self.trim_fraction)
        elif self.robust is not None:
            return robust_assemble(
                summaries,
                network.domain,
                network.space.size,
                self.robust,
                self.trim_fraction,
                self.mom_groups,
                self.interpolation,
            )
        if self.combine == "interpolate":
            reconstruction = assemble_cdf_interpolated(
                summaries, network.domain, self.gap_interpolation
            )
            return reconstruction.cdf, reconstruction.total_items
        weights = ht_weights(summaries)
        cdf = assemble_cdf(summaries, weights, network.domain, self.interpolation)
        return cdf, estimate_total_items(summaries, network.space.size)

    def _estimate_degraded(
        self, network: RingBackend, rng: Optional[np.random.Generator]
    ) -> DensityEstimate:
        """The resilient estimation path: collect what the network allows.

        Probes route under the retry policy's budgets; failures are
        tallied, the reconstruction uses the surviving replies, and the
        result reports the realised ``coverage``.  The surviving probes are
        an unbiased subsample of the iid design (faults strike positions,
        not values), so the Horvitz–Thompson machinery applies unchanged at
        the smaller sample size — only the variance grows, which the
        widened confidence band makes explicit (half-width scaled by
        ``1/sqrt(coverage)``).  With zero surviving evidence the uniform
        zero-evidence prior is returned.  Never raises on network state.
        """
        before = network.stats.snapshot()
        policy = self.retry if self.retry is not None else RetryPolicy.DEFAULT
        requested = self.probes
        if network.n_peers == 0:
            return zero_evidence_estimate(
                network.domain,
                before.delta(network.stats.snapshot()),
                self.name,
                requested,
                ("empty_ring",),
            )
        generator = rng if rng is not None else network.rng
        targets = probe_positions(
            requested, network.space.size, generator, self.placement
        )
        results, probe_failures = collect_probes_resilient(
            network, targets, self.synopsis_buckets, self.synopsis_kind, policy
        )
        summaries = [r.summary for r in results]
        if self.trim_density_ratio is not None and summaries:
            from repro.core.byzantine import trim_outlier_summaries

            summaries = trim_outlier_summaries(summaries, self.trim_density_ratio)
        reasons = tuple(sorted({f.reason for f in probe_failures}))
        coverage = len(results) / requested if requested else 0.0
        if not summaries:
            return zero_evidence_estimate(
                network.domain,
                before.delta(network.stats.snapshot()),
                self.name,
                requested,
                reasons or ("no_evidence",),
            )
        try:
            cdf, n_items = self._assemble(summaries, network)
        except ValueError:
            return zero_evidence_estimate(
                network.domain,
                before.delta(network.stats.snapshot()),
                self.name,
                requested,
                reasons + ("no_evidence",),
            )
        n_peers = estimate_peer_count(summaries, network.space.size)
        latency = float(max(r.hops for r in results) + 2)
        if not probe_failures:
            # Full coverage: the fault plane was active but every probe got
            # through — a plain (non-degraded) estimate.
            return DensityEstimate(
                cdf=cdf,
                domain=network.domain,
                n_items=n_items,
                n_peers=n_peers,
                probes=len(summaries),
                cost=before.delta(network.stats.snapshot()),
                method=self.name,
                latency_rounds=latency,
            )
        inflation = float(1.0 / np.sqrt(max(coverage, 1.0 / requested)))
        confidence = self._widened_band(summaries, network.domain, generator, inflation)
        return DegradedEstimate(
            cdf=cdf,
            domain=network.domain,
            n_items=n_items,
            n_peers=n_peers,
            probes=len(summaries),
            cost=before.delta(network.stats.snapshot()),
            method=self.name,
            latency_rounds=latency,
            coverage=coverage,
            probes_requested=requested,
            failures=reasons,
            ci_inflation=inflation,
            confidence=confidence,
        )

    def _widened_band(
        self,
        summaries: Sequence[PeerSummary],
        domain: tuple[float, float],
        rng: np.random.Generator,
        inflation: float,
    ) -> Optional[ConfidenceBand]:
        """Bootstrap band from the surviving replies, widened by ``inflation``.

        The bootstrap quantifies the variance of the realised sample; the
        inflation additionally charges for the probes that never arrived,
        centring the widened band on the bootstrap band's midline.
        """
        from repro.core.confidence import ConfidenceBand, bootstrap_confidence_band

        if len(summaries) < 2:
            return None
        try:
            band = bootstrap_confidence_band(
                summaries,
                domain,
                rng=rng,
                gap_interpolation=self.gap_interpolation,
            )
        except ValueError:
            return None
        center = 0.5 * (band.lower + band.upper)
        half = 0.5 * (band.upper - band.lower) * inflation
        return ConfidenceBand(
            grid=band.grid,
            lower=np.clip(center - half, 0.0, 1.0),
            upper=np.clip(center + half, 0.0, 1.0),
            level=band.level,
            replicates=band.replicates,
        )
