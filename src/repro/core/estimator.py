"""Estimator facade: the protocol and the paper's estimator.

Every estimation method in the repository — the paper's distribution-free
estimator and all four baselines — implements :class:`DensityEstimator`:
given a live network, return a :class:`~repro.core.estimate.DensityEstimate`.
Experiments treat methods uniformly through this protocol, so accuracy and
cost comparisons are apples-to-apples by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional, Protocol, runtime_checkable

import numpy as np

from repro.core.cdf_sampling import (
    assemble_cdf,
    assemble_cdf_interpolated,
    collect_probes,
    estimate_peer_count,
    estimate_total_items,
    ht_weights,
)
from repro.core.estimate import DensityEstimate
from repro.ring.network import RingNetwork

__all__ = ["DensityEstimator", "DistributionFreeEstimator"]


@runtime_checkable
class DensityEstimator(Protocol):
    """Anything that can estimate the global data distribution."""

    name: str

    def estimate(
        self, network: RingNetwork, rng: Optional[np.random.Generator] = None
    ) -> DensityEstimate:
        """Produce an estimate against the network's current state."""
        ...


@dataclass(frozen=True)
class DistributionFreeEstimator:
    """The paper's estimator: sample the global CDF with HT-corrected probes.

    Parameters
    ----------
    probes:
        Number of ring positions to probe (``s``).  Accuracy scales as
        ``O(1/√s)``; cost scales linearly in ``s`` (each probe is one
        O(log N)-hop lookup plus a constant-size reply).
    synopsis_buckets:
        Histogram resolution ``B`` of each probe reply.  Bounds per-reply
        bandwidth; larger ``B`` sharpens the estimate *within* probed
        segments.
    placement:
        ``"uniform"`` for iid probe positions (the analysed design) or
        ``"stratified"`` for variance-reduced stratified placement.
    synopsis_kind:
        ``"equi-width"`` buckets (the classic histogram reply) or
        ``"equi-depth"`` buckets (edges at the peer's local quantiles —
        same payload, resolution that follows the data; sharper on skewed
        or atom-heavy local distributions).
    combine:
        How probe replies become the global CDF.  ``"interpolate"``
        (default) reconstructs the density — exact over probed segments,
        edge-density interpolation over gaps; lowest error per probe.
        ``"mixture"`` is the pure Horvitz–Thompson weighted mixture of
        local CDFs — design-unbiased, higher variance; kept as the
        analysable reference and as an ablation.
    interpolation:
        ``"linear"`` (uniform-within-bucket, the default) or ``"step"``
        (mass at bucket edges) assembly of local CDFs in mixture mode.
    gap_interpolation:
        Gap-mass rule in interpolate mode: ``"linear"`` (trapezoid) or
        ``"log"`` (logarithmic mean, exact for exponential density decay).
    trim_density_ratio:
        When set, replies whose implied density exceeds this multiple of
        the batch median are discarded before assembly — the pollution
        defense of :mod:`repro.core.byzantine`.  ``None`` trusts every
        reply (the default).
    """

    probes: int = 64
    synopsis_buckets: int = 8
    synopsis_kind: Literal["equi-width", "equi-depth"] = "equi-width"
    placement: Literal["uniform", "stratified"] = "uniform"
    combine: Literal["interpolate", "mixture"] = "interpolate"
    interpolation: Literal["linear", "step"] = "linear"
    gap_interpolation: Literal["linear", "log"] = "linear"
    trim_density_ratio: Optional[float] = None
    name: str = "distribution-free"

    def __post_init__(self) -> None:
        if self.probes < 1:
            raise ValueError(f"probes must be >= 1, got {self.probes}")
        if self.synopsis_buckets < 1:
            raise ValueError(f"synopsis_buckets must be >= 1, got {self.synopsis_buckets}")
        if self.combine not in ("interpolate", "mixture"):
            raise ValueError(f"unknown combine mode {self.combine!r}")

    def estimate(
        self, network: RingNetwork, rng: Optional[np.random.Generator] = None
    ) -> DensityEstimate:
        """Probe the network and assemble the distribution-free estimate."""
        before = network.stats.snapshot()
        results = collect_probes(
            network,
            self.probes,
            self.synopsis_buckets,
            rng=rng,
            placement=self.placement,
            synopsis_kind=self.synopsis_kind,
        )
        summaries = [r.summary for r in results]
        if self.trim_density_ratio is not None:
            from repro.core.byzantine import trim_outlier_summaries

            summaries = trim_outlier_summaries(summaries, self.trim_density_ratio)
        if self.combine == "interpolate":
            reconstruction = assemble_cdf_interpolated(
                summaries, network.domain, self.gap_interpolation
            )
            cdf = reconstruction.cdf
            n_items = reconstruction.total_items
        else:
            weights = ht_weights(summaries)
            cdf = assemble_cdf(summaries, weights, network.domain, self.interpolation)
            n_items = estimate_total_items(summaries, network.space.size)
        cost = before.delta(network.stats.snapshot())
        # Probes are independent lookups a client issues concurrently:
        # the critical path is the slowest probe plus its request/reply.
        latency = max(r.hops for r in results) + 2
        return DensityEstimate(
            cdf=cdf,
            domain=network.domain,
            n_items=n_items,
            n_peers=estimate_peer_count(summaries, network.space.size),
            probes=len(summaries),
            cost=cost,
            method=self.name,
            latency_rounds=float(latency),
        )
