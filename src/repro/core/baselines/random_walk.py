"""Random-walk peer sampling — unbiased but hop-hungry.

A Metropolis–Hastings random walk over the overlay graph (fingers plus
ring neighbours) converges to the *uniform* distribution over peers, so
after a long enough walk the visited peer is an unbiased uniform peer
sample.  Weighting each sampled peer's local CDF by its item count then
gives an unbiased global estimate — a classically correct alternative to
the paper's method.  The catch is cost: every retained sample pays
``walk_length`` hops of burn-in, versus O(log N) for one routed probe, and
the MH self-loops waste further steps.  The cost-accuracy experiments
quantify exactly this gap.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.cdf_sampling import assemble_cdf
from repro.core.estimate import DensityEstimate, degraded_from_exception
from repro.core.synopsis import summarize_peer
from repro.ring.messages import MessageType
from repro.ring.network import NetworkError, RingNetwork
from repro.ring.node import PeerNode

__all__ = ["RandomWalkEstimator", "metropolis_hastings_walk", "overlay_adjacency"]


# Memoized overlay views, keyed by the network's topology_version: the
# adjacency (pure pointer-graph function) and the live-filtered neighbour
# memo the walks consult (ident -> (neighbour ids, resolved nodes)).
# Membership changes and maintenance both advance the token, so a cached
# view is exactly what a rebuild would produce.
_LiveCache = dict[int, tuple[list[int], list[PeerNode]]]
_OVERLAY_CACHE: "weakref.WeakKeyDictionary[RingNetwork, tuple[int, dict[int, list[int]], _LiveCache]]" = (
    weakref.WeakKeyDictionary()
)


def _overlay_views(network: RingNetwork) -> tuple[dict[int, list[int]], _LiveCache]:
    """The (adjacency, live-neighbour memo) pair for the current overlay."""
    token = network.topology_version
    cached = _OVERLAY_CACHE.get(network)
    if cached is not None and cached[0] == token:
        return cached[1], cached[2]
    # The snapshot plane assembles the same symmetrized graph from its
    # successor/predecessor/finger matrices in a handful of vectorized
    # passes; ``_build_adjacency`` below remains the scalar reference.
    adjacency = network.snapshot().adjacency()
    live_cache: _LiveCache = {}
    _OVERLAY_CACHE[network] = (token, adjacency, live_cache)
    return adjacency, live_cache


def overlay_adjacency(network: RingNetwork) -> dict[int, list[int]]:
    """Symmetrized overlay graph: fingers ∪ ring links ∪ their reverses.

    Metropolis–Hastings needs a *reversible* proposal chain, but finger
    pointers are directed; a walk over out-links alone has a stationary
    distribution far from uniform (badly so when peer ids cluster, e.g.
    under load-balanced placement).  Real DHT random-walk samplers
    therefore walk the undirected overlay — every peer also keeps the
    in-links that Chord's notify traffic reveals.  We model that by
    symmetrizing the current pointer graph, memoized until the next
    membership or pointer change.
    """
    return _overlay_views(network)[0]


def _build_adjacency(network: RingNetwork) -> dict[int, list[int]]:
    adjacency: dict[int, set[int]] = {ident: set() for ident in network.peer_ids()}
    for node in network.peers():
        links = set(node.fingers)
        links.discard(None)
        links.add(node.successor_id)
        if node.predecessor_id is not None:
            links.add(node.predecessor_id)
        links.discard(node.ident)
        own = adjacency[node.ident]
        for target in links:
            neighbors = adjacency.get(target)
            if neighbors is not None:
                own.add(target)
                neighbors.add(node.ident)
    return {ident: sorted(neighbors) for ident, neighbors in adjacency.items()}


def metropolis_hastings_walk(
    network: RingNetwork,
    start: PeerNode,
    steps: int,
    rng: np.random.Generator,
    adjacency: dict[int, list[int]] | None = None,
    live_cache: _LiveCache | None = None,
) -> PeerNode:
    """Walk ``steps`` MH steps; the end node is ≈ uniform over peers.

    Each step proposes a uniform neighbour on the symmetrized overlay and
    accepts with probability ``min(1, deg(u)/deg(v))`` — the degree
    correction that makes the uniform distribution stationary.  Every
    proposal costs one counted ``WALK_STEP`` message (the degree query),
    accepted or not, posted to the ledger in bulk at walk end.

    ``live_cache`` memoizes the live-filtered neighbour lists (with their
    resolved nodes); a caller running many walks against unchanging peer
    liveness shares one dict across them to filter each list once.
    """
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    if adjacency is None:
        adjacency = overlay_adjacency(network)
    cache: _LiveCache = live_cache if live_cache is not None else {}
    cache_get = cache.get
    adjacency_get = adjacency.get
    nodes_get = network._nodes.get
    integers = rng.integers
    uniform = rng.random

    def live_entry(ident: int) -> tuple[list[int], list[PeerNode]]:
        entry = cache_get(ident)
        if entry is None:
            ids: list[int] = []
            nodes: list[PeerNode] = []
            for neighbor_id in adjacency_get(ident, ()):
                node = nodes_get(neighbor_id)
                if node is not None:
                    ids.append(neighbor_id)
                    nodes.append(node)
            entry = (ids, nodes)
            cache[ident] = entry
        return entry

    current = start
    proposals = 0
    try:
        for _ in range(steps):
            # Cache hits are the common case once the first walks have
            # touched a node, so the lookup is inlined and the closure only
            # runs on misses.
            entry = cache_get(current.ident)
            if entry is None:
                entry = live_entry(current.ident)
            neighbor_nodes = entry[1]
            degree = len(neighbor_nodes)
            if not degree:
                break  # isolated node; the walk cannot move
            proposal = neighbor_nodes[integers(0, degree)]
            proposals += 1
            if not proposal.alive:
                continue
            proposal_entry = cache_get(proposal.ident)
            if proposal_entry is None:
                proposal_entry = live_entry(proposal.ident)
            degree_ratio = degree / max(len(proposal_entry[0]), 1)
            # The acceptance draw always happens (it is part of the RNG
            # stream even when the ratio accepts unconditionally); draws
            # are < 1 by construction, so `u < min(1, r)` ⇔ `r >= 1 or u < r`.
            u = uniform()
            if degree_ratio >= 1.0 or u < degree_ratio:
                current = proposal
    finally:
        if proposals:
            network.record(MessageType.WALK_STEP, count=proposals)
    return current


@dataclass(frozen=True)
class RandomWalkEstimator:
    """Uniform peer samples via MH walks, pooled with count weights."""

    probes: int = 64
    walk_length: int = 16
    synopsis_buckets: int = 8
    name: str = "random-walk"

    def __post_init__(self) -> None:
        if self.probes < 1:
            raise ValueError(f"probes must be >= 1, got {self.probes}")
        if self.walk_length < 1:
            raise ValueError(f"walk_length must be >= 1, got {self.walk_length}")
        if self.synopsis_buckets < 1:
            raise ValueError(f"synopsis_buckets must be >= 1, got {self.synopsis_buckets}")

    def estimate(
        self, network: RingNetwork, rng: Optional[np.random.Generator] = None
    ) -> DensityEstimate:
        """Collect ``probes`` walk-end peers and pool count-weighted.

        Failure conditions (empty ring, all-empty replies) come back as a
        zero-evidence degraded estimate rather than an exception.
        """
        generator = rng if rng is not None else network.rng
        before = network.stats.snapshot()
        try:
            summaries = []
            # One symmetrization per overlay state — models peers knowing
            # their in-links.  Liveness can only change together with the
            # overlay token, so the live-neighbour memo is shared across
            # passes too.
            adjacency, live_cache = _overlay_views(network)
            current = network.random_peer()
            for _ in range(self.probes):
                current = metropolis_hastings_walk(
                    network, current, self.walk_length, generator, adjacency, live_cache
                )
                network.record_rpc(
                    MessageType.PROBE_REQUEST,
                    MessageType.PROBE_REPLY,
                    reply_payload=self.synopsis_buckets + 2,
                )
                summaries.append(summarize_peer(network, current, self.synopsis_buckets))
            counts = np.asarray([s.local_count for s in summaries], dtype=float)
            if counts.sum() <= 0:
                raise ValueError("all sampled peers were empty; cannot estimate a distribution")
            weights = counts / counts.sum()
            cdf = assemble_cdf(summaries, weights, network.domain, "linear")
        except (NetworkError, ValueError) as exc:
            return degraded_from_exception(
                exc, network.domain, before.delta(network.stats.snapshot()), self.name, self.probes
            )
        cost = before.delta(network.stats.snapshot())
        # The walk is one sequential chain: every step and every summary
        # exchange sits on the critical path.
        latency = float(cost.hops + 2 * len(summaries))
        # Uniform peer inclusion: mean segment length estimates ring/N,
        # mean count estimates n/N.
        mean_length = float(np.mean([s.segment_length for s in summaries]))
        n_peers = network.space.size / mean_length
        n_items = float(counts.mean()) * n_peers
        return DensityEstimate(
            cdf=cdf,
            domain=network.domain,
            n_items=n_items,
            n_peers=n_peers,
            probes=len(summaries),
            cost=cost,
            method=self.name,
            latency_rounds=latency,
        )
