"""Random-walk peer sampling — unbiased but hop-hungry.

A Metropolis–Hastings random walk over the overlay graph (fingers plus
ring neighbours) converges to the *uniform* distribution over peers, so
after a long enough walk the visited peer is an unbiased uniform peer
sample.  Weighting each sampled peer's local CDF by its item count then
gives an unbiased global estimate — a classically correct alternative to
the paper's method.  The catch is cost: every retained sample pays
``walk_length`` hops of burn-in, versus O(log N) for one routed probe, and
the MH self-loops waste further steps.  The cost-accuracy experiments
quantify exactly this gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.cdf_sampling import assemble_cdf
from repro.core.estimate import DensityEstimate
from repro.core.synopsis import summarize_peer
from repro.ring.messages import MessageType
from repro.ring.network import RingNetwork
from repro.ring.node import PeerNode

__all__ = ["RandomWalkEstimator", "metropolis_hastings_walk", "overlay_adjacency"]


def overlay_adjacency(network: RingNetwork) -> dict[int, list[int]]:
    """Symmetrized overlay graph: fingers ∪ ring links ∪ their reverses.

    Metropolis–Hastings needs a *reversible* proposal chain, but finger
    pointers are directed; a walk over out-links alone has a stationary
    distribution far from uniform (badly so when peer ids cluster, e.g.
    under load-balanced placement).  Real DHT random-walk samplers
    therefore walk the undirected overlay — every peer also keeps the
    in-links that Chord's notify traffic reveals.  We model that by
    symmetrizing the current pointer graph once per estimation pass.
    """
    adjacency: dict[int, set[int]] = {ident: set() for ident in network.peer_ids()}
    for node in network.peers():
        links = set(
            finger for finger in node.fingers if finger is not None
        )
        links.add(node.successor_id)
        if node.predecessor_id is not None:
            links.add(node.predecessor_id)
        links.discard(node.ident)
        for target in links:
            if target in adjacency:
                adjacency[node.ident].add(target)
                adjacency[target].add(node.ident)
    return {ident: sorted(neighbors) for ident, neighbors in adjacency.items()}


def metropolis_hastings_walk(
    network: RingNetwork,
    start: PeerNode,
    steps: int,
    rng: np.random.Generator,
    adjacency: dict[int, list[int]] | None = None,
) -> PeerNode:
    """Walk ``steps`` MH steps; the end node is ≈ uniform over peers.

    Each step proposes a uniform neighbour on the symmetrized overlay and
    accepts with probability ``min(1, deg(u)/deg(v))`` — the degree
    correction that makes the uniform distribution stationary.  Every
    proposal costs one counted ``WALK_STEP`` message (the degree query),
    accepted or not.
    """
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    if adjacency is None:
        adjacency = overlay_adjacency(network)
    current = start
    for _ in range(steps):
        current_neighbors = [
            n for n in adjacency.get(current.ident, []) if network.try_node(n) is not None
        ]
        if not current_neighbors:
            break  # isolated node; the walk cannot move
        proposal_id = current_neighbors[int(rng.integers(0, len(current_neighbors)))]
        network.record(MessageType.WALK_STEP)
        proposal = network.try_node(proposal_id)
        if proposal is None or not proposal.alive:
            continue
        proposal_neighbors = [
            n for n in adjacency.get(proposal_id, []) if network.try_node(n) is not None
        ]
        degree_ratio = len(current_neighbors) / max(len(proposal_neighbors), 1)
        if rng.random() < min(1.0, degree_ratio):
            current = proposal
    return current


@dataclass(frozen=True)
class RandomWalkEstimator:
    """Uniform peer samples via MH walks, pooled with count weights."""

    probes: int = 64
    walk_length: int = 16
    synopsis_buckets: int = 8
    name: str = "random-walk"

    def __post_init__(self) -> None:
        if self.probes < 1:
            raise ValueError(f"probes must be >= 1, got {self.probes}")
        if self.walk_length < 1:
            raise ValueError(f"walk_length must be >= 1, got {self.walk_length}")
        if self.synopsis_buckets < 1:
            raise ValueError(f"synopsis_buckets must be >= 1, got {self.synopsis_buckets}")

    def estimate(
        self, network: RingNetwork, rng: Optional[np.random.Generator] = None
    ) -> DensityEstimate:
        """Collect ``probes`` walk-end peers and pool count-weighted."""
        generator = rng if rng is not None else network.rng
        before = network.stats.snapshot()
        summaries = []
        # One symmetrization per pass — models peers knowing their in-links.
        adjacency = overlay_adjacency(network)
        current = network.random_peer()
        for _ in range(self.probes):
            current = metropolis_hastings_walk(
                network, current, self.walk_length, generator, adjacency
            )
            network.record_rpc(
                MessageType.PROBE_REQUEST,
                MessageType.PROBE_REPLY,
                reply_payload=self.synopsis_buckets + 2,
            )
            summaries.append(summarize_peer(network, current, self.synopsis_buckets))
        counts = np.asarray([s.local_count for s in summaries], dtype=float)
        if counts.sum() <= 0:
            raise ValueError("all sampled peers were empty; cannot estimate a distribution")
        weights = counts / counts.sum()
        cdf = assemble_cdf(summaries, weights, network.domain, "linear")
        cost = before.delta(network.stats.snapshot())
        # The walk is one sequential chain: every step and every summary
        # exchange sits on the critical path.
        latency = float(cost.hops + 2 * len(summaries))
        # Uniform peer inclusion: mean segment length estimates ring/N,
        # mean count estimates n/N.
        mean_length = float(np.mean([s.segment_length for s in summaries]))
        n_peers = network.space.size / mean_length
        n_items = float(counts.mean()) * n_peers
        return DensityEstimate(
            cdf=cdf,
            domain=network.domain,
            n_items=n_items,
            n_peers=n_peers,
            probes=len(summaries),
            cost=cost,
            method=self.name,
            latency_rounds=latency,
        )
