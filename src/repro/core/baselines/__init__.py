"""Baseline estimators the paper's method is compared against."""

from repro.core.baselines.gossip import PushSumHistogramEstimator
from repro.core.baselines.naive import NaivePeerSamplingEstimator
from repro.core.baselines.parametric import ParametricEstimator
from repro.core.baselines.random_walk import RandomWalkEstimator, metropolis_hastings_walk
from repro.core.baselines.spectra import SpectraEstimator

__all__ = [
    "NaivePeerSamplingEstimator",
    "ParametricEstimator",
    "PushSumHistogramEstimator",
    "RandomWalkEstimator",
    "SpectraEstimator",
    "metropolis_hastings_walk",
]
