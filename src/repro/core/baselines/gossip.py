"""Push-sum gossip aggregation — the accurate-but-costly comparator.

Every peer participates: each holds a value vector (its local counts over a
global equi-width histogram, plus an initiator indicator used to recover
``N``) and a push-sum weight.  Each synchronous round, every peer keeps
half of its mass and pushes half to one random overlay neighbour; the
ratio ``value / weight`` at every peer converges geometrically to the
network-wide average, from which the initiator reads off the global
histogram.  Accuracy at convergence is bounded only by the histogram
resolution — but every round costs N messages, so the total is Θ(R·N),
orders of magnitude above the probe-based methods.  That trade-off is the
point of including it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.cdf import PiecewiseCDF
from repro.core.estimate import DensityEstimate
from repro.ring.messages import MessageType
from repro.ring.network import RingNetwork
from repro.ring.node import PeerNode

__all__ = ["PushSumHistogramEstimator"]


def _gossip_targets(network: RingNetwork, node: PeerNode, rng: np.random.Generator) -> Optional[int]:
    """One random live overlay neighbour (finger or ring neighbour)."""
    candidates: list[int] = []
    seen: set[int] = set()
    for ident in [*node.fingers, node.successor_id, node.predecessor_id]:
        if ident is None or ident == node.ident or ident in seen:
            continue
        seen.add(ident)
        if network.try_node(ident) is not None:
            candidates.append(ident)
    if not candidates:
        return None
    return candidates[int(rng.integers(0, len(candidates)))]


@dataclass(frozen=True)
class PushSumHistogramEstimator:
    """Global histogram by push-sum over the whole network.

    Parameters
    ----------
    buckets:
        Resolution of the global equi-width histogram.
    rounds:
        Push-sum rounds.  Convergence is geometric; ``O(log N + log 1/ε)``
        rounds reach relative error ``ε``.
    """

    buckets: int = 64
    rounds: int = 30
    name: str = "gossip-push-sum"

    def __post_init__(self) -> None:
        if self.buckets < 1:
            raise ValueError(f"buckets must be >= 1, got {self.buckets}")
        if self.rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {self.rounds}")

    def estimate(
        self, network: RingNetwork, rng: Optional[np.random.Generator] = None
    ) -> DensityEstimate:
        """Run push-sum to convergence and read the initiator's state."""
        generator = rng if rng is not None else network.rng
        before = network.stats.snapshot()
        low, high = network.domain
        peer_ids = list(network.peer_ids())
        initiator = peer_ids[int(generator.integers(0, len(peer_ids)))]

        # State per peer: histogram slots + [indicator], and a weight.
        values: dict[int, np.ndarray] = {}
        weights: dict[int, float] = {}
        for ident in peer_ids:
            node = network.node(ident)
            vector = np.zeros(self.buckets + 1, dtype=float)
            vector[: self.buckets] = node.store.histogram_range(
                low, np.nextafter(high, np.inf), self.buckets
            )
            vector[self.buckets] = 1.0 if ident == initiator else 0.0
            values[ident] = vector
            weights[ident] = 1.0

        for _ in range(self.rounds):
            inbox_values: dict[int, np.ndarray] = {
                ident: np.zeros(self.buckets + 1) for ident in values
            }
            inbox_weights: dict[int, float] = {ident: 0.0 for ident in values}
            for ident in values:
                node = network.try_node(ident)
                if node is None:
                    continue
                target = _gossip_targets(network, node, generator)
                values[ident] *= 0.5
                weights[ident] *= 0.5
                if target is None or target not in inbox_values:
                    # Nowhere to push: keep the other half too.
                    inbox_values[ident] += values[ident]
                    inbox_weights[ident] += weights[ident]
                    continue
                network.record(MessageType.GOSSIP_PUSH, payload=self.buckets + 2)
                inbox_values[target] += values[ident]
                inbox_weights[target] += weights[ident]
            for ident in values:
                values[ident] += inbox_values[ident]
                weights[ident] += inbox_weights[ident]

        state = values[initiator]
        weight = weights[initiator]
        if weight <= 0:
            raise RuntimeError("push-sum weight collapsed; network disconnected?")
        averaged = state / weight  # ≈ [global_counts / N ..., 1 / N]
        indicator = averaged[self.buckets]
        histogram = np.clip(averaged[: self.buckets], 0.0, None)
        mass = histogram.sum()
        if mass <= 0:
            raise ValueError("gossip converged to an empty histogram; no data in network")

        edges = np.linspace(low, high, self.buckets + 1)
        fs = np.concatenate(([0.0], np.cumsum(histogram) / mass))
        cdf = PiecewiseCDF(edges, fs, kind="linear")
        cost = before.delta(network.stats.snapshot())
        n_peers = 1.0 / indicator if indicator > 0 else float("nan")
        return DensityEstimate(
            cdf=cdf,
            domain=network.domain,
            n_items=float(mass * n_peers) if np.isfinite(n_peers) else float("nan"),
            n_peers=float(n_peers),
            probes=network.n_peers,
            cost=cost,
            method=self.name,
            latency_rounds=float(self.rounds),
        )
