"""Push-sum gossip aggregation — the accurate-but-costly comparator.

Every peer participates: each holds a value vector (its local counts over a
global equi-width histogram, plus an initiator indicator used to recover
``N``) and a push-sum weight.  Each synchronous round, every peer keeps
half of its mass and pushes half to one random overlay neighbour; the
ratio ``value / weight`` at every peer converges geometrically to the
network-wide average, from which the initiator reads off the global
histogram.  Accuracy at convergence is bounded only by the histogram
resolution — but every round costs N messages, so the total is Θ(R·N),
orders of magnitude above the probe-based methods.  That trade-off is the
point of including it.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Optional

import numpy as np
from numpy.typing import NDArray

from repro.core.cdf import PiecewiseCDF
from repro.core.estimate import DensityEstimate, degraded_from_exception
from repro.ring.messages import CostSnapshot, MessageType
from repro.ring.network import NetworkError, RingNetwork
from repro.ring.node import PeerNode

__all__ = ["PushSumHistogramEstimator"]


def _gossip_candidates(network: RingNetwork, node: PeerNode) -> list[int]:
    """The node's live overlay neighbours (fingers or ring neighbours).

    Deduplicated in first-seen order — the order the random draw in
    :func:`_gossip_targets` indexes into.
    """
    candidates: list[int] = []
    seen: set[int] = set()
    for ident in [*node.fingers, node.successor_id, node.predecessor_id]:
        if ident is None or ident == node.ident or ident in seen:
            continue
        seen.add(ident)
        if network.try_node(ident) is not None:
            candidates.append(ident)
    return candidates


def _gossip_targets(network: RingNetwork, node: PeerNode, rng: np.random.Generator) -> Optional[int]:
    """One random live overlay neighbour (finger or ring neighbour)."""
    candidates = _gossip_candidates(network, node)
    if not candidates:
        return None
    return candidates[int(rng.integers(0, len(candidates)))]


# Memoized per-pass setup (peer order, initial histogram matrix, candidate
# index lists), keyed by everything it reads: the overlay token (membership
# and pointers) plus the sum of the stores' monotone version counters (any
# data mutation advances it).  A hit reproduces the uncached setup exactly.
_PASS_CACHE: "weakref.WeakKeyDictionary[RingNetwork, tuple]" = weakref.WeakKeyDictionary()


def _pass_setup(
    network: RingNetwork, buckets: int
) -> tuple[list[int], NDArray[np.float64], list[Optional[list[int]]]]:
    low, high = network.domain
    nodes = list(network.peers())
    store_token = sum(node.store.version for node in nodes)
    key = (network.topology_version, store_token, buckets)
    cached = _PASS_CACHE.get(network)
    if cached is not None and cached[0] == key:
        return cached[1], cached[2], cached[3]

    peer_ids = [node.ident for node in nodes]
    n = len(peer_ids)
    base_values = np.zeros((n, buckets + 1), dtype=float)
    # All N local histograms in one pass over the snapshot's packed value
    # array (per-peer segments in sorted-id order): the bin formula is the
    # one from LocalStore.histogram_range applied elementwise, and flat
    # bincount splits the counts per peer.  Rows are permuted back to the
    # iteration order of ``nodes``.
    snap = network.snapshot()
    hi_open = np.nextafter(high, np.inf)
    width = hi_open - low
    vals = snap.values
    inside = (vals >= low) & (vals < hi_open)
    sel = vals[inside] if not inside.all() else vals
    bucket_idx = ((sel - low) / width * buckets).astype(np.int64)
    np.minimum(bucket_idx, buckets - 1, out=bucket_idx)
    peer_idx = np.repeat(np.arange(n, dtype=np.int64), snap.counts)
    if sel is not vals:
        peer_idx = peer_idx[inside]
    hist = np.bincount(
        peer_idx * buckets + bucket_idx, minlength=n * buckets
    ).reshape(n, buckets)
    rows = np.searchsorted(snap.ids, np.asarray(peer_ids, dtype=np.uint64))
    base_values[:, :buckets] = hist[rows]
    index_of = {ident: i for i, ident in enumerate(peer_ids)}
    candidate_indices: list[Optional[list[int]]] = []
    for node in nodes:
        candidates = _gossip_candidates(network, node)
        candidate_indices.append(
            [index_of[c] for c in candidates] if candidates else None
        )
    _PASS_CACHE[network] = (key, peer_ids, base_values, candidate_indices)
    return peer_ids, base_values, candidate_indices


@dataclass(frozen=True)
class PushSumHistogramEstimator:
    """Global histogram by push-sum over the whole network.

    Parameters
    ----------
    buckets:
        Resolution of the global equi-width histogram.
    rounds:
        Push-sum rounds.  Convergence is geometric; ``O(log N + log 1/ε)``
        rounds reach relative error ``ε``.
    """

    buckets: int = 64
    rounds: int = 30
    name: str = "gossip-push-sum"

    def __post_init__(self) -> None:
        if self.buckets < 1:
            raise ValueError(f"buckets must be >= 1, got {self.buckets}")
        if self.rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {self.rounds}")

    def estimate(
        self, network: RingNetwork, rng: Optional[np.random.Generator] = None
    ) -> DensityEstimate:
        """Run push-sum to convergence and read the initiator's state.

        Failure conditions (empty ring, disconnected push-sum, empty
        histogram) come back as a zero-evidence degraded estimate rather
        than an exception.
        """
        generator = rng if rng is not None else network.rng
        before = network.stats.snapshot()
        low, high = network.domain
        try:
            return self._run_push_sum(network, generator, before, low, high)
        except (NetworkError, ValueError, RuntimeError) as exc:
            return degraded_from_exception(
                exc,
                network.domain,
                before.delta(network.stats.snapshot()),
                self.name,
                network.n_peers,
            )

    def _run_push_sum(
        self,
        network: RingNetwork,
        generator: np.random.Generator,
        before: CostSnapshot,
        low: float,
        high: float,
    ) -> DensityEstimate:

        # State as one (N, B+1) matrix: histogram slots + [indicator], and
        # a weight vector.  Mass movement per round is then two scatter-adds
        # instead of a dict of per-peer arrays.  The initial matrix and each
        # peer's candidate neighbours (liveness is fixed for a synchronous
        # pass) come from the memoized setup.
        peer_ids, base_values, candidate_indices = _pass_setup(network, self.buckets)
        n = len(peer_ids)
        initiator = peer_ids[int(generator.integers(0, n))]
        initiator_index = peer_ids.index(initiator)
        values = base_values.copy()
        weights = np.ones(n, dtype=float)
        values[initiator_index, self.buckets] = 1.0

        # Fault-aware path, taken only when a fault plane or base message
        # loss is configured (the fault-free path below is untouched and
        # byte-identical to its historical behaviour).  Push-sum has no
        # retransmission story: a dropped push destroys the in-flight half
        # of the sender's mass *and weight*, biasing the converged ratio —
        # exactly the failure mode Spectra's atomic exchanges avoid, and
        # the contrast F20 measures.  Stalled peers neither push nor
        # receive; pushes to them, across a partition, or over a lossy
        # link are lost.
        faults = network.faults
        plane = faults if faults is not None and faults.active else None
        loss_rate = network.loss_rate
        lossy = plane is not None or loss_rate > 0.0

        pushes = 0
        targets = np.empty(n, dtype=np.intp)
        inbox_values = np.empty_like(values)
        inbox_weights = np.empty_like(weights)
        integers = generator.integers
        if lossy:
            responsive = [
                plane is None or not plane.is_stalled(ident) for ident in peer_ids
            ]
            lost = np.zeros(n, dtype=bool)
            for _ in range(self.rounds):
                lost[:] = False
                for index, candidates in enumerate(candidate_indices):
                    if candidates is None or not responsive[index]:
                        # No live neighbour, or stalled: keeps both halves
                        # (a free self-push), sends nothing.
                        targets[index] = index
                        continue
                    targets[index] = candidates[int(integers(0, len(candidates)))]
                    pushes += 1
                    dst_index = int(targets[index])
                    delivered = True
                    if plane is not None:
                        src_id, dst_id = peer_ids[index], peer_ids[dst_index]
                        if not responsive[dst_index]:
                            delivered = False
                        elif not plane.reachable(src_id, dst_id):
                            delivered = False
                        elif not plane.link_delivers(src_id, dst_id):
                            delivered = False
                    if delivered and loss_rate > 0.0:
                        delivered = bool(generator.random() >= loss_rate)
                    lost[index] = not delivered
                values *= 0.5
                weights *= 0.5
                inbox_values.fill(0.0)
                inbox_weights.fill(0.0)
                kept = ~lost
                np.add.at(inbox_values, targets[kept], values[kept])
                np.add.at(inbox_weights, targets[kept], weights[kept])
                values += inbox_values
                weights += inbox_weights
        else:
            for _ in range(self.rounds):
                # Draw each peer's push target in peer order — the exact RNG
                # sequence the per-peer loop consumed (no draw for a peer with
                # no live neighbour: it keeps both halves, modelled as a push
                # to itself that costs no message).
                for index, candidates in enumerate(candidate_indices):
                    if candidates is None:
                        targets[index] = index
                    else:
                        targets[index] = candidates[int(integers(0, len(candidates)))]
                        pushes += 1
                values *= 0.5
                weights *= 0.5
                inbox_values.fill(0.0)
                inbox_weights.fill(0.0)
                np.add.at(inbox_values, targets, values)
                np.add.at(inbox_weights, targets, weights)
                values += inbox_values
                weights += inbox_weights
        if pushes:
            # One ledger update for the whole pass; totals are identical to
            # recording each push separately.
            network.record(
                MessageType.GOSSIP_PUSH,
                count=pushes,
                payload=(self.buckets + 2) * pushes,
            )

        state = values[initiator_index]
        weight = float(weights[initiator_index])
        if weight <= 0:
            raise RuntimeError("push-sum weight collapsed; network disconnected?")
        averaged = state / weight  # ≈ [global_counts / N ..., 1 / N]
        indicator = averaged[self.buckets]
        histogram = np.clip(averaged[: self.buckets], 0.0, None)
        mass = histogram.sum()
        if mass <= 0:
            raise ValueError("gossip converged to an empty histogram; no data in network")

        edges = np.linspace(low, high, self.buckets + 1)
        fs = np.concatenate(([0.0], np.cumsum(histogram) / mass))
        cdf = PiecewiseCDF(edges, fs, kind="linear")
        cost = before.delta(network.stats.snapshot())
        n_peers = 1.0 / indicator if indicator > 0 else float("nan")
        return DensityEstimate(
            cdf=cdf,
            domain=network.domain,
            n_items=float(mass * n_peers) if np.isfinite(n_peers) else float("nan"),
            n_peers=float(n_peers),
            probes=network.n_peers,
            cost=cost,
            method=self.name,
            latency_rounds=float(self.rounds),
        )
