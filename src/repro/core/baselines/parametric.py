"""Parametric moment fitting — the distribution-*bound* comparator.

Uses the same cheap probes as the distribution-free estimator (so cost is
identical) but assumes a parametric family: it estimates the global mean
and variance by Horvitz–Thompson-weighted moments of the probed synopses
and returns the fitted family member's CDF.  On data that actually follows
the family it is excellent — fewer effective parameters means less
variance.  On anything else (heavy tails, multimodality) it is wrong no
matter how many probes it gets, which is precisely the contrast that
motivates "distribution-free".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional, Sequence

import numpy as np

from repro.core.cdf import PiecewiseCDF
from repro.core.cdf_sampling import (
    collect_probes,
    estimate_peer_count,
    estimate_total_items,
    ht_weights,
)
from repro.core.estimate import DensityEstimate, degraded_from_exception
from repro.core.synopsis import PeerSummary
from repro.data.distributions import TruncatedExponential, TruncatedNormal
from repro.data.domain import Domain
from repro.ring.network import NetworkError, RingNetwork

__all__ = ["ParametricEstimator", "weighted_moments"]


def weighted_moments(
    summaries: Sequence[PeerSummary], weights: Sequence[float]
) -> tuple[float, float]:
    """HT-weighted estimates of the global data mean and variance.

    Each peer's synopsis is read as mass at bucket midpoints; the weights
    are the same Horvitz–Thompson weights the distribution-free estimator
    uses, so the moments themselves are (asymptotically) unbiased — the
    bias of this baseline lives entirely in the family assumption.
    """
    weight_arr = np.asarray(weights, dtype=float)
    mean_acc = 0.0
    second_acc = 0.0
    for summary, w in zip(summaries, weight_arr):
        if w <= 0 or summary.local_count == 0:
            continue
        for segment in summary.segments:
            if segment.total == 0:
                continue
            edges = segment.bucket_edges()
            midpoints = 0.5 * (edges[:-1] + edges[1:])
            probs = segment.counts / summary.local_count
            mean_acc += w * float(np.sum(probs * midpoints))
            second_acc += w * float(np.sum(probs * midpoints**2))
    variance = max(second_acc - mean_acc**2, 1e-12)
    return mean_acc, variance


@dataclass(frozen=True)
class ParametricEstimator:
    """Fit a parametric family to HT-weighted probe moments."""

    probes: int = 64
    synopsis_buckets: int = 8
    family: Literal["normal", "exponential"] = "normal"
    grid_points: int = 257
    name: str = "parametric"

    def __post_init__(self) -> None:
        if self.probes < 1:
            raise ValueError(f"probes must be >= 1, got {self.probes}")
        if self.family not in ("normal", "exponential"):
            raise ValueError(f"unknown family {self.family!r}")
        if self.grid_points < 3:
            raise ValueError(f"grid_points must be >= 3, got {self.grid_points}")

    def estimate(
        self, network: RingNetwork, rng: Optional[np.random.Generator] = None
    ) -> DensityEstimate:
        """Probe, fit moments, return the fitted family CDF.

        Failure conditions (empty ring, all-empty replies) come back as a
        zero-evidence degraded estimate rather than an exception.
        """
        before = network.stats.snapshot()
        try:
            results = collect_probes(network, self.probes, self.synopsis_buckets, rng=rng)
            summaries = [r.summary for r in results]
            weights = ht_weights(summaries)
        except (NetworkError, ValueError) as exc:
            return degraded_from_exception(
                exc, network.domain, before.delta(network.stats.snapshot()), self.name, self.probes
            )
        mean, variance = weighted_moments(summaries, weights)

        low, high = network.domain
        domain = Domain(low, high)
        if self.family == "normal":
            fitted = TruncatedNormal(mean=mean, std=float(np.sqrt(variance)), _domain=domain)
        else:
            # Exponential: match the mean of the *untruncated* family,
            # measured from the domain's left edge.
            offset = max(mean - low, 1e-9)
            rate = domain.width / offset
            fitted = TruncatedExponential(rate=rate, _domain=domain)

        grid = domain.grid(self.grid_points)
        cdf = PiecewiseCDF(grid, np.asarray(fitted.cdf(grid), dtype=float), kind="linear")
        cost = before.delta(network.stats.snapshot())
        latency = max(r.hops for r in results) + 2
        return DensityEstimate(
            cdf=cdf,
            domain=network.domain,
            n_items=estimate_total_items(summaries, network.space.size),
            n_peers=estimate_peer_count(summaries, network.space.size),
            probes=len(summaries),
            cost=cost,
            method=f"{self.name}-{self.family}",
            latency_rounds=float(latency),
        )
