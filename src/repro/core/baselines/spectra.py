"""Spectra-style epidemic CDF estimation — robustness through mass conservation.

*Spectra* (arXiv:1204.1373) estimates distribution functions in networks by
epidemic aggregation designed to survive faults and message loss.  This
module implements that design point as a first-class
:class:`~repro.core.estimator.DensityEstimator` next to the paper's
probe-based sampler:

* **Density-screened synopsis injection.**  Every peer contributes its
  local count histogram on the shared global grid — the item-weighted
  aggregate, which under the repo's order-preserving placement is the
  unbiased global histogram.  Before injection, each contribution passes
  the *neighbourhood density screen*: a peer whose claimed density
  exceeds ``trim_ratio`` times the median density of its ring-nearest
  peers injects nothing (its neighbours, who can verify segment
  geometry, refuse to vouch for the claim).  This is the gossip-time
  analogue of the probe path's
  :func:`~repro.core.byzantine.trim_outlier_summaries` — the same
  threshold semantics, applied once at round zero instead of per probe
  batch — so an isolated liar claiming 100× is excluded outright, while
  honest heavy hitters on smoothly skewed data survive (the reference is
  local, not global).  A subtler attacker lying *under* the threshold
  keeps influence bounded by ``trim_ratio × its honest share``, the same
  residual the probe-path trim admits.
* **Atomic, mass-conserving exchanges.**  Each round every responsive
  peer initiates one pairwise averaging exchange with a random
  ring/finger neighbour: the exchange commits only when the request and
  its response both arrive, and on commit *both* endpoints replace their
  state with the pair average.  A timeout on either leg aborts the
  exchange with no state change at either end.  Nothing is ever
  duplicated or destroyed, so under message loss the epidemic average
  stays exactly correct and only converges more slowly.  Plain push-sum
  (:class:`~repro.core.baselines.gossip.PushSumHistogramEstimator` under
  its fault-aware path) destroys in-flight mass on a drop; that contrast
  is the point of running both in F20.
* **FaultPlane + EventEngine integration.**  Every exchange is a
  ``GOSSIP`` delivery on a :class:`~repro.ring.events.EventEngine` clock,
  and delivery consults the attached
  :class:`~repro.ring.faults.FaultPlane` exactly as the probe path does:
  stalled endpoints fail the exchange, cross-partition sends fail, the
  per-link overrides draw from the plane's own generator, and the base
  loss rate drops messages.  Cost is recorded per attempted exchange
  (``GOSSIP_PUSH``, one synopsis payload each), so the message-cost
  comparison against probing is apples-to-apples.

Degradation contract: the client seeds and reads ``entries`` entry peers,
merging per-component totals (each component reports its own size through
the entry-indicator channels), so a partition costs accuracy only for
arcs no entry landed in and peers that are stalled.  When the reachable,
responsive population falls short of the ring the result is a
:class:`~repro.core.estimate.DegradedEstimate` whose ``coverage`` is that
population's share (``ci_inflation`` follows the probe path's
``1/sqrt(coverage)`` convention, and the failure reasons use
``"partitioned"`` / ``"stalled"``).  Pure message loss degrades nothing —
conserved mass still averages to the true value — which is exactly the
property the estimator exists to demonstrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np
from numpy.typing import NDArray

from repro.core.baselines.gossip import _pass_setup
from repro.core.cdf import PiecewiseCDF
from repro.core.estimate import (
    DegradedEstimate,
    DensityEstimate,
    degraded_from_exception,
    zero_evidence_estimate,
)
from repro.core.synopsis import summarize_peer
from repro.ring.events import EventEngine, schedule_gossip_push
from repro.ring.messages import CostSnapshot
from repro.ring.network import NetworkError, RingNetwork

__all__ = ["SpectraEstimator"]


@dataclass(frozen=True)
class SpectraEstimator:
    """Epidemic peer-average CDF: robust to loss and bounded against liars.

    Parameters
    ----------
    buckets:
        Resolution of the global equi-width histogram each peer reports
        into.  One exchange carries ``2 · (buckets + entries + 2)``
        payload units (histogram + count channel + entry indicators +
        averaging weight, in each direction of the push-pull pair).
    rounds:
        Epidemic rounds.  Convergence of the ratio estimate is geometric
        in the fault-free case; loss and stalls stretch it (the mass is
        conserved, so accuracy is recovered by running longer — the
        trade-off F20 quantifies).
    trim_ratio:
        Neighbourhood density-screen threshold (must exceed 1): a peer
        claiming more than this multiple of its ring-neighbourhood's
        median density injects nothing.  Mirrors the probe path's
        ``trim_density_ratio`` default.
    entries:
        Entry points the client seeds and reads.  Each entry peer gets
        its own indicator channel (mass 1 at that peer), so after the
        epidemic every reachable component reports its own size (the
        component holds ``|signature|`` units of indicator mass, so
        ``|C| ≈ |signature| / Σ indicator ratios``) and the client can
        *merge component totals across a partition* — the epidemic
        analogue of probe RPCs landing in every arc.  One entry
        reproduces the classic single-initiator readout and is blind to
        the other side of a partition.
    """

    buckets: int = 64
    rounds: int = 30
    trim_ratio: float = 20.0
    entries: int = 8
    name: str = "spectra"

    def __post_init__(self) -> None:
        if self.buckets < 1:
            raise ValueError(f"buckets must be >= 1, got {self.buckets}")
        if self.rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {self.rounds}")
        if self.trim_ratio <= 1.0:
            raise ValueError(f"trim_ratio must be > 1, got {self.trim_ratio}")
        if self.entries < 1:
            raise ValueError(f"entries must be >= 1, got {self.entries}")

    def estimate(
        self, network: RingNetwork, rng: Optional[np.random.Generator] = None
    ) -> DensityEstimate:
        """Run the epidemic to its round budget and read one peer's ratio.

        Terminal no-evidence conditions (empty ring, no data anywhere in
        the readout component) come back as a zero-evidence degraded
        estimate rather than an exception.
        """
        generator = rng if rng is not None else network.rng
        before = network.stats.snapshot()
        if network.n_peers == 0:
            return zero_evidence_estimate(
                network.domain,
                before.delta(network.stats.snapshot()),
                self.name,
                0,
                ("empty_ring",),
            )
        try:
            return self._run_epidemic(network, generator, before)
        except (NetworkError, ValueError, RuntimeError) as exc:
            return degraded_from_exception(
                exc,
                network.domain,
                before.delta(network.stats.snapshot()),
                self.name,
                network.n_peers,
            )

    # ------------------------------------------------------------------
    def _local_states(
        self, network: RingNetwork
    ) -> tuple[list[int], NDArray[np.float64], list[Optional[list[int]]]]:
        """Initial per-peer state: ``[count histogram, count, indicator]``.

        Byzantine peers report the same lie they feed the probe path — the
        fabricated synopsis of :func:`repro.core.byzantine.fabricate_summary`,
        binned onto the global grid — so the attack hits both estimator
        families identically.  Every claim then passes the neighbourhood
        density screen (:func:`~repro.core.byzantine.trim_outlier_summaries`
        over the full peer population); screened-out peers inject zeros but
        keep relaying, exactly like an un-vouched-for peer in a deployed
        epidemic.
        """
        from repro.core.byzantine import trim_outlier_summaries

        low, high = network.domain
        peer_ids, base_values, candidate_indices = _pass_setup(network, self.buckets)
        n = len(peer_ids)
        states = np.zeros((n, self.buckets + 1), dtype=float)
        raw = base_values[:, : self.buckets]
        counts = raw.sum(axis=1)
        states[:, : self.buckets] = raw
        states[:, self.buckets] = counts
        liar_rows: list[int] = []
        edges = np.linspace(low, high, self.buckets + 1)
        for index, ident in enumerate(peer_ids):
            node = network.node(ident)
            if getattr(node, "byzantine", None) is None:
                continue
            liar_rows.append(index)
            lie = summarize_peer(network, node, self.buckets)
            hist = np.zeros(self.buckets, dtype=float)
            for segment in lie.segments:
                seg_edges = segment.bucket_edges()
                centers = 0.5 * (seg_edges[:-1] + seg_edges[1:])
                bucket_idx = np.clip(
                    np.searchsorted(edges, centers, side="right") - 1,
                    0,
                    self.buckets - 1,
                )
                np.add.at(hist, bucket_idx, segment.counts.astype(float))
            states[index, : self.buckets] = hist
            states[index, self.buckets] = float(lie.local_count)
        # The density screen sees every peer's *claimed* summary (fabricated
        # for liars — summarize_peer applies the behaviour itself).  It is
        # iterated to a fixed point: a *cluster* of adjacent liars can
        # vouch for each other's neighbourhood median on the first pass,
        # but once the screened majority of the cluster is removed the
        # stragglers stand isolated against honest neighbours and fall on
        # the next pass.  Honest peers only ever gain honest neighbours as
        # liars are removed, so iteration never grows the false-positive
        # set and terminates in at most n passes.
        kept = [
            summarize_peer(network, network.node(ident), self.buckets)
            for ident in peer_ids
        ]
        while True:
            survivors = trim_outlier_summaries(kept, self.trim_ratio)
            if len(survivors) == len(kept):
                break
            kept = survivors
        kept_ids = {s.peer_id for s in kept}
        for index, ident in enumerate(peer_ids):
            if ident not in kept_ids:
                states[index, : self.buckets + 1] = 0.0
        return peer_ids, states, candidate_indices

    def _run_epidemic(
        self,
        network: RingNetwork,
        generator: np.random.Generator,
        before: CostSnapshot,
    ) -> DensityEstimate:
        low, high = network.domain
        peer_ids, local_states, candidate_indices = self._local_states(network)
        n = len(peer_ids)
        faults = network.faults
        plane = faults if faults is not None and faults.active else None
        loss_rate = network.loss_rate
        responsive = [
            plane is None or not plane.is_stalled(ident) for ident in peer_ids
        ]
        responsive_indices = [i for i in range(n) if responsive[i]]
        if not responsive_indices:
            raise RuntimeError("every peer is stalled; no entry point")
        k = min(self.entries, len(responsive_indices))
        picked = generator.choice(len(responsive_indices), size=k, replace=False)
        entry_indices = [responsive_indices[int(i)] for i in picked]
        # State layout: [count histogram (B), local count, k entry
        # indicators]; plus the push weight vector.  Indicator j starts as
        # mass 1 at entry j, so its converged ratio in a component is
        # 1/|component| — the component-size readout.
        states = np.zeros((n, self.buckets + 1 + k), dtype=float)
        states[:, : self.buckets + 1] = local_states
        for j, entry in enumerate(entry_indices):
            states[entry, self.buckets + 1 + j] = 1.0
        weights = np.ones(n, dtype=float)

        engine = EventEngine(network, seed=0)
        # Request and response each carry a full synopsis.
        payload = float(2 * (self.buckets + k + 2))

        def make_exchange(src_index: int, dst_index: int) -> Callable[[], None]:
            src_id, dst_id = peer_ids[src_index], peer_ids[dst_index]

            def exchange() -> None:
                # Push-pull averaging commits only when both legs of the
                # round trip deliver; an aborted exchange leaves both
                # states untouched.  Either way global mass is conserved
                # exactly, no matter what the plane does.
                delivered = True
                if plane is not None:
                    if not responsive[dst_index]:
                        delivered = False
                    elif not plane.reachable(src_id, dst_id):
                        delivered = False
                    elif not plane.link_delivers(src_id, dst_id):
                        delivered = False
                    elif not plane.link_delivers(dst_id, src_id):
                        delivered = False
                if delivered and loss_rate > 0.0:
                    delivered = bool(
                        generator.random() >= loss_rate
                        and generator.random() >= loss_rate
                    )
                if not delivered:
                    return
                pair_state = 0.5 * (states[src_index] + states[dst_index])
                pair_weight = 0.5 * (weights[src_index] + weights[dst_index])
                states[src_index] = pair_state
                states[dst_index] = pair_state.copy()
                weights[src_index] = pair_weight
                weights[dst_index] = pair_weight

            return exchange

        for round_index in range(self.rounds):
            for src_index, candidates in enumerate(candidate_indices):
                if not responsive[src_index] or not candidates:
                    continue
                dst_index = candidates[int(generator.integers(0, len(candidates)))]
                schedule_gossip_push(
                    engine,
                    peer_ids[src_index],
                    peer_ids[dst_index],
                    payload_units=payload,
                    tag=round_index,
                    on_deliver=make_exchange(src_index, dst_index),
                )
            engine.run()

        # Readout: each entry peer reports its ratio vector.  Entries in
        # the same connected component share an indicator *signature* (the
        # set of entry indicators with positive mass), so distinct
        # signatures enumerate the distinct reachable components; each
        # component's histogram total is its average ratio scaled by its
        # size estimate, and the client sums component totals — merging
        # evidence across a partition exactly as multi-arc probes do.
        eps = 1e-12
        components: dict[tuple[int, ...], list[NDArray[np.float64]]] = {}
        for j, entry in enumerate(entry_indices):
            weight = float(weights[entry])
            if weight <= 0.0:
                continue
            ratio = states[entry] / weight
            signature = tuple(
                idx
                for idx in range(k)
                if float(ratio[self.buckets + 1 + idx]) > eps
            )
            if not signature:
                continue
            components.setdefault(signature, []).append(ratio)
        if not components:
            raise RuntimeError("no entry peer produced a readable ratio")
        histogram = np.zeros(self.buckets, dtype=float)
        n_items = 0.0
        n_peers_hat = 0.0
        for signature in sorted(components):
            ratios = components[signature]
            mean_ratio = np.mean(np.stack(ratios, axis=0), axis=0)
            # The component holds exactly |signature| units of indicator
            # mass (one per entry seeded inside it), so at convergence
            # the ratios sum to |signature| / |component|.  Summing
            # before inverting averages out the residual imbalance
            # between an entry's own indicator and the ones it received.
            indicator_sum = float(
                sum(mean_ratio[self.buckets + 1 + idx] for idx in signature)
            )
            size = len(signature) / max(indicator_sum, eps)
            size = min(max(size, 1.0), float(n))
            histogram += np.clip(mean_ratio[: self.buckets], 0.0, None) * size
            n_items += float(mean_ratio[self.buckets]) * size
            n_peers_hat += size
        mass = histogram.sum()
        if mass <= 0:
            raise ValueError("epidemic converged to an empty histogram; no data seen")
        edges = np.linspace(low, high, self.buckets + 1)
        fs = np.concatenate(([0.0], np.cumsum(histogram) / mass))
        cdf = PiecewiseCDF(edges, fs, kind="linear")
        cost = before.delta(network.stats.snapshot())

        if plane is not None:
            # Structural coverage: responsive peers reachable from at least
            # one entry point.  Deterministic given the plane state, so the
            # degradation tests can assert monotonicity on it.
            entry_ids = [peer_ids[e] for e in entry_indices]
            reached = sum(
                1
                for i, ident in enumerate(peer_ids)
                if responsive[i]
                and any(plane.reachable(entry, ident) for entry in entry_ids)
            )
            coverage = reached / n
            if coverage < 1.0:
                reasons: list[str] = []
                if plane.partitioned:
                    reasons.append("partitioned")
                if plane.stalled_ids:
                    reasons.append("stalled")
                inflation = float(1.0 / np.sqrt(max(coverage, 1.0 / n)))
                return DegradedEstimate(
                    cdf=cdf,
                    domain=network.domain,
                    n_items=n_items,
                    n_peers=n_peers_hat,
                    probes=reached,
                    cost=cost,
                    method=self.name,
                    latency_rounds=float(self.rounds),
                    coverage=coverage,
                    probes_requested=n,
                    failures=tuple(sorted(reasons)),
                    ci_inflation=inflation,
                )
        return DensityEstimate(
            cdf=cdf,
            domain=network.domain,
            n_items=n_items,
            n_peers=n_peers_hat,
            probes=n,
            cost=cost,
            method=self.name,
            latency_rounds=float(self.rounds),
        )
