"""Naive peer sampling — the biased comparator.

Identical probing machinery to the distribution-free estimator (uniform
ring positions, routed lookups, synopsis replies) but the replies are
pooled with *equal* weights.  Since a uniform ring position lands on a peer
with probability proportional to its segment length, peers owning long
segments are over-represented; whenever segment length correlates with
local data shape — which is exactly what skewed data over random peer
placement produces — the pooled estimate is biased, and no number of probes
fixes it.  This estimator is simultaneously the paper's natural strawman
and the ablation of the Horvitz–Thompson correction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional

import numpy as np

from repro.core.cdf_sampling import assemble_cdf, collect_probes, estimate_peer_count
from repro.core.estimate import DensityEstimate, degraded_from_exception
from repro.ring.network import NetworkError, RingNetwork

__all__ = ["NaivePeerSamplingEstimator"]


@dataclass(frozen=True)
class NaivePeerSamplingEstimator:
    """Pool probed local CDFs with uniform weights (no bias correction)."""

    probes: int = 64
    synopsis_buckets: int = 8
    placement: Literal["uniform", "stratified"] = "uniform"
    name: str = "naive-peer-sampling"

    def __post_init__(self) -> None:
        if self.probes < 1:
            raise ValueError(f"probes must be >= 1, got {self.probes}")
        if self.synopsis_buckets < 1:
            raise ValueError(f"synopsis_buckets must be >= 1, got {self.synopsis_buckets}")

    def estimate(
        self, network: RingNetwork, rng: Optional[np.random.Generator] = None
    ) -> DensityEstimate:
        """Probe and pool unweighted.

        Failure conditions (empty ring, disconnected overlay, all-empty
        replies) come back as a zero-evidence degraded estimate rather
        than an exception.
        """
        before = network.stats.snapshot()
        try:
            results = collect_probes(
                network, self.probes, self.synopsis_buckets, rng=rng, placement=self.placement
            )
            summaries = [r.summary for r in results]
            non_empty = sum(1 for s in summaries if s.local_count > 0)
            if non_empty == 0:
                raise ValueError("all probed peers were empty; cannot estimate a distribution")
            weights = [1.0 / non_empty if s.local_count > 0 else 0.0 for s in summaries]
            cdf = assemble_cdf(summaries, weights, network.domain, "linear")
        except (NetworkError, ValueError) as exc:
            return degraded_from_exception(
                exc, network.domain, before.delta(network.stats.snapshot()), self.name, self.probes
            )
        cost = before.delta(network.stats.snapshot())
        latency = max(r.hops for r in results) + 2
        # Naive volume extrapolation: average probed count times peer count.
        n_peers = estimate_peer_count(summaries, network.space.size)
        mean_count = float(np.mean([s.local_count for s in summaries]))
        return DensityEstimate(
            cdf=cdf,
            domain=network.domain,
            n_items=mean_count * n_peers,
            n_peers=n_peers,
            probes=len(summaries),
            cost=cost,
            method=self.name,
            latency_rounds=float(latency),
        )
