"""Continuous estimation: keeping the model fresh as the data drifts.

The paper's setting is *dynamic*: data churns and peers come and go, so
any estimate goes stale.  The naive policies are "never refresh" (free,
eventually wrong) and "refresh every round" (always right, Θ(s·log N)
messages per round).  :class:`ContinuousEstimator` implements the middle
path: a cheap *drift check* — a handful of probes compared against the
current model — triggers a full re-estimate only when the evidence says
the model no longer fits.  The F11 experiment places all three policies
on the accuracy-per-message frontier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Optional

import numpy as np

from repro.core.cdf import PiecewiseCDF
from repro.core.cdf_sampling import assemble_cdf_interpolated, collect_probes
from repro.core.estimate import DensityEstimate
from repro.core.estimator import DensityEstimator, DistributionFreeEstimator
from repro.core.backend import RingBackend
from repro.ring.network import RingNetwork

__all__ = ["MaintenanceAction", "ContinuousEstimator", "drift_score_between"]


def drift_score_between(
    network: RingBackend,
    model_cdf: PiecewiseCDF,
    check_probes: int,
    synopsis_buckets: int,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Cheap KS-style discrepancy between fresh evidence and a model CDF.

    Collects ``check_probes`` probes, reconstructs a coarse CDF from them
    alone, and returns the max absolute difference to ``model_cdf`` over
    the reconstruction's breakpoints.  Expected value under no drift is
    the sampling noise of the small batch (≈ ``1/sqrt(check_probes)``);
    drift adds bias on top.  This is the drift signal shared by
    :class:`ContinuousEstimator` and the serving layer's staleness-SLO
    refresh policy (:mod:`repro.serve.policy`).
    """
    if check_probes < 1:
        raise ValueError(f"check_probes must be >= 1, got {check_probes}")
    results = collect_probes(network, check_probes, synopsis_buckets, rng=rng)
    reconstruction = assemble_cdf_interpolated(
        [r.summary for r in results], network.domain
    )
    grid = reconstruction.cdf.xs
    fresh = np.asarray(reconstruction.cdf(grid), dtype=float)
    model = np.asarray(model_cdf(grid), dtype=float)
    return float(np.max(np.abs(fresh - model)))


@dataclass(frozen=True)
class MaintenanceAction:
    """What one maintenance step did and what it cost."""

    action: Literal["bootstrapped", "kept", "refreshed"]
    drift_score: float
    messages: int


@dataclass
class ContinuousEstimator:
    """A self-refreshing estimate of the global distribution.

    Parameters
    ----------
    estimator:
        The full estimator used for (re-)estimation.
    drift_threshold:
        KS-style discrepancy between a cheap probe batch and the current
        model above which a refresh is triggered.  The check statistic is
        noisy at small ``check_probes``; thresholds around 2-3x the
        expected sampling noise (≈ ``1/sqrt(check_probes)``) work well.
    check_probes:
        Size of the drift-check batch (a small fraction of the full
        budget).
    """

    estimator: DensityEstimator = field(default_factory=DistributionFreeEstimator)
    drift_threshold: float = 0.15
    check_probes: int = 8
    synopsis_buckets: int = 8
    _current: Optional[DensityEstimate] = field(init=False, default=None)

    def __post_init__(self) -> None:
        if self.drift_threshold <= 0:
            raise ValueError(f"drift_threshold must be positive, got {self.drift_threshold}")
        if self.check_probes < 1:
            raise ValueError(f"check_probes must be >= 1, got {self.check_probes}")

    @property
    def current(self) -> Optional[DensityEstimate]:
        """The model currently served (None before the first maintain)."""
        return self._current

    def refresh(
        self, network: RingNetwork, rng: Optional[np.random.Generator] = None
    ) -> DensityEstimate:
        """Force a full re-estimate."""
        self._current = self.estimator.estimate(network, rng=rng)
        return self._current

    def drift_score(
        self, network: RingNetwork, rng: Optional[np.random.Generator] = None
    ) -> float:
        """Cheap discrepancy between fresh evidence and the current model.

        Collects ``check_probes`` probes, reconstructs a coarse CDF from
        them alone, and returns the KS distance to the current model over
        the probed segments' breakpoints.  Expected value under no drift
        is the sampling noise of the small batch; drift adds bias on top.
        """
        if self._current is None:
            raise RuntimeError("no current estimate; call refresh() or maintain() first")
        return drift_score_between(
            network,
            self._current.cdf,
            self.check_probes,
            self.synopsis_buckets,
            rng=rng,
        )

    def maintain(
        self, network: RingNetwork, rng: Optional[np.random.Generator] = None
    ) -> MaintenanceAction:
        """One maintenance step: check drift, refresh if needed."""
        before = network.stats.messages
        if self._current is None:
            self.refresh(network, rng=rng)
            return MaintenanceAction(
                action="bootstrapped",
                drift_score=float("inf"),
                messages=network.stats.messages - before,
            )
        score = self.drift_score(network, rng=rng)
        if score > self.drift_threshold:
            self.refresh(network, rng=rng)
            action: Literal["kept", "refreshed"] = "refreshed"
        else:
            action = "kept"
        return MaintenanceAction(
            action=action,
            drift_score=score,
            messages=network.stats.messages - before,
        )
