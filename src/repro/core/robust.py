"""Robust aggregation of probe replies: bounding any one liar's influence.

The Horvitz–Thompson mixture trusts every reply: weights are proportional
to claimed density ``c_p / ℓ_p``, so one peer claiming a 100× count drags
most of the estimate's mass to wherever it parked the lie (the pollution
attack of :mod:`repro.core.byzantine`).  The neighbourhood density trim
(:func:`~repro.core.byzantine.trim_outlier_summaries`) catches *isolated*
spikes; this module adds the classical statistical hardening that needs no
topology assumption at all:

* **Trimmed weighting** — rank replies by claimed density and discard the
  top and bottom ``trim_fraction`` of the batch before weighting.  With
  ``k`` probes trimmed per side, any coalition of up to ``k`` liars is
  removed outright no matter how large its claimed counts; the cost is
  the (bounded, measurable) bias of dropping the honest tails.
* **Winsorized evidence** — clamp any reply whose implied density
  exceeds the batch's ``(1 - trim_fraction)`` density quantile by
  scaling its claimed counts down to the cap.  A liar's influence is
  clamped to that of an ordinary dense honest reply, but no evidence is
  ever dropped and the reply batch stays a valid batch — so this
  combiner composes with *any* assembly, including the interpolated
  reconstruction the other combiners cannot harden.
* **Median-of-means CDF** — split the probe batch into ``groups``
  disjoint sub-batches, assemble the HT mixture independently per group,
  and take the *pointwise median* across the group CDFs.  A liar can
  dominate only its own group; as long as a strict majority of groups is
  liar-free, the median curve tracks the honest estimate.  The same
  grouping gives the standard median-of-means estimate of the total item
  count.

Which combiner is sound depends on the *placement*.  Under hashed
placement honest densities are homogeneous, so rank statistics (trim,
median-of-means) separate liars cleanly.  Under the repo's
order-preserving placement honest density legitimately tracks data
density — on skewed data the densest honest reply carries most of the
HT weight, and trimming or group-splitting it away erases the
distribution's centre.  Winsorization is the combiner that survives
skew: it bounds influence without discarding the informative replies.

All combiners consume exactly the evidence the probe path already
collects — no extra messages — and compose with the density trim (trim
first, then combine robustly).  They are wired into
:class:`~repro.core.estimator.DistributionFreeEstimator` through its
``robust`` field; the F20 experiment measures them against the trusting
estimator and the epidemic Spectra estimator under combined fault and
pollution attack schedules.
"""

from __future__ import annotations

from typing import Literal, Optional, Sequence, Tuple

import numpy as np
from numpy.typing import NDArray

from repro.core.cdf import PiecewiseCDF
from repro.core.cdf_sampling import assemble_cdf, estimate_total_items, ht_weights
from repro.core.synopsis import PeerSummary, SegmentSummary

__all__ = [
    "RobustMethod",
    "MOM_GRID_POINTS",
    "validate_trim_fraction",
    "validate_mom_groups",
    "validate_robust_method",
    "trimmed_ht_weights",
    "trimmed_total_items",
    "winsorize_summaries",
    "median_of_means_cdf",
    "robust_assemble",
]

RobustMethod = Literal["trimmed", "winsorized", "median-of-means"]

#: Evaluation grid resolution of the median-of-means CDF.  The pointwise
#: median of piecewise-linear group CDFs is itself piecewise linear only
#: between curve crossings, so the combined estimate is represented on a
#: fixed grid; 513 points keeps the discretisation error well below the
#: sampling error at every probe budget the experiments use.
MOM_GRID_POINTS = 513


def validate_trim_fraction(value: float) -> float:
    """A per-side trim fraction must leave a non-empty middle: ``[0, 0.5)``."""
    if not 0.0 <= value < 0.5:
        raise ValueError(f"trim_fraction must be in [0, 0.5), got {value}")
    return float(value)


def validate_mom_groups(value: int) -> int:
    """Median-of-means needs at least one group (3+ for any robustness)."""
    if value < 1:
        raise ValueError(f"mom_groups must be >= 1, got {value}")
    return int(value)


def trimmed_ht_weights(
    summaries: Sequence[PeerSummary], trim_fraction: float
) -> Tuple[NDArray[np.float64], NDArray[np.bool_]]:
    """Horvitz–Thompson weights after symmetric density-rank trimming.

    The ``ceil(trim_fraction * s)`` highest-density and lowest-density
    replies get weight zero; surviving weights are renormalised.  Ranking
    uses a stable sort on density, so ties break by batch position — a
    pure function of the reply batch.  Returns ``(weights, kept)`` where
    ``kept`` marks the replies that survived the trim.

    Raises ``ValueError`` when trimming leaves no reply with data — the
    caller's existing no-evidence degradation handles it.
    """
    validate_trim_fraction(trim_fraction)
    if not summaries:
        raise ValueError("need at least one probe summary")
    densities = np.asarray([s.density for s in summaries], dtype=float)
    count = densities.size
    per_side = int(np.ceil(trim_fraction * count)) if trim_fraction > 0.0 else 0
    kept = np.ones(count, dtype=bool)
    if per_side > 0 and 2 * per_side < count:
        order = np.argsort(densities, kind="stable")
        kept[order[:per_side]] = False
        kept[order[count - per_side:]] = False
    weights = np.where(kept, densities, 0.0)
    total = float(weights.sum())
    if total <= 0.0:
        raise ValueError("all probe evidence was trimmed away or empty")
    return weights / total, kept


def trimmed_total_items(
    summaries: Sequence[PeerSummary],
    kept: NDArray[np.bool_],
    ring_size: int,
) -> float:
    """Total-items estimate from the trimmed batch, ``n̂ = 2^m · mean(c/ℓ)``.

    The trimmed mean of the densities bounds a liar's pull on ``n̂`` the
    same way the trimmed weights bound its pull on ``F̂``.
    """
    survivors = [s for s, keep in zip(summaries, kept) if keep]
    return estimate_total_items(survivors, ring_size)


def winsorize_summaries(
    summaries: Sequence[PeerSummary], trim_fraction: float
) -> list[PeerSummary]:
    """Clamp over-dense replies to the batch's upper density quantile.

    A reply whose implied density ``c_p / ℓ_p`` exceeds the
    ``(1 - trim_fraction)`` quantile of the batch densities has its
    claimed counts scaled down (deterministic round-half-up per bucket)
    so its density lands at the cap; all other replies pass through
    untouched.  The most any single reply — honest or lying — can then
    pull is the pull of an ordinary dense reply, no evidence is
    discarded, and the result is a valid reply batch that any assembly
    (mixture or interpolated reconstruction) consumes unchanged.

    Raises ``ValueError`` on an empty batch.
    """
    validate_trim_fraction(trim_fraction)
    if not summaries:
        raise ValueError("need at least one probe summary")
    if trim_fraction <= 0.0:
        return list(summaries)
    densities = np.asarray([s.density for s in summaries], dtype=float)
    cap = float(np.quantile(densities, 1.0 - trim_fraction))
    clamped: list[PeerSummary] = []
    for summary, density in zip(summaries, densities):
        if density <= cap or density <= 0.0:
            clamped.append(summary)
            continue
        factor = cap / density
        segments = []
        for seg in summary.segments:
            counts = np.floor(seg.counts * factor + 0.5).astype(np.int64)
            segments.append(
                SegmentSummary(seg.value_low, seg.value_high, counts, edges=seg.edges)
            )
        clamped.append(
            PeerSummary(
                peer_id=summary.peer_id,
                segment_length=summary.segment_length,
                local_count=int(sum(seg.total for seg in segments)),
                segments=tuple(segments),
            )
        )
    return clamped


def _group_slices(count: int, groups: int) -> list[NDArray[np.intp]]:
    """Deterministic round-robin partition of ``range(count)`` into groups.

    Probe replies arrive in iid order, so contiguous striding is as good a
    random split as any and a pure function of the batch — no RNG draw,
    hence no perturbation of any existing stream.
    """
    effective = min(groups, count)
    return [np.arange(start, count, effective, dtype=np.intp) for start in range(effective)]


def median_of_means_cdf(
    summaries: Sequence[PeerSummary],
    domain: tuple[float, float],
    groups: int,
    interpolation: Literal["linear", "step"] = "linear",
    grid_points: int = MOM_GRID_POINTS,
) -> Tuple[PiecewiseCDF, float]:
    """Pointwise-median CDF across disjoint probe groups, plus robust ``n̂``.

    Each group assembles its own HT mixture (groups where every reply is
    empty contribute nothing); the estimate is the pointwise median of the
    group CDFs on a fixed domain grid, and ``n̂`` is the median of the
    per-group mean-density estimates.  The median of non-decreasing
    functions is non-decreasing, and every group CDF is pinned to 0/1 at
    the domain edges, so the result is a valid CDF by construction.

    Raises ``ValueError`` when no group carries any data.
    """
    validate_mom_groups(groups)
    if grid_points < 2:
        raise ValueError(f"grid_points must be >= 2, got {grid_points}")
    if not summaries:
        raise ValueError("need at least one probe summary")
    low, high = domain
    grid = np.linspace(low, high, grid_points)
    curves: list[NDArray[np.float64]] = []
    totals: list[float] = []
    for indices in _group_slices(len(summaries), groups):
        group = [summaries[int(i)] for i in indices]
        try:
            weights = ht_weights(group)
        except ValueError:
            # Every reply in this group was empty: no evidence, no vote.
            continue
        cdf = assemble_cdf(group, weights, domain, interpolation)
        curves.append(np.asarray(cdf(grid), dtype=float))
        totals.append(np.mean(np.asarray([s.density for s in group], dtype=float)))
    if not curves:
        raise ValueError("all probed peers were empty; cannot estimate a distribution")
    stacked = np.stack(curves, axis=0)
    median_curve = np.median(stacked, axis=0)
    # Guard the construction invariants against float round-off only; the
    # median of monotone 0-to-1 curves is already monotone and pinned.
    median_curve = np.maximum.accumulate(np.clip(median_curve, 0.0, 1.0))
    median_curve[0] = 0.0
    median_curve[-1] = 1.0
    ring_units = float(np.median(np.asarray(totals, dtype=float)))
    return PiecewiseCDF(grid, median_curve, kind="linear"), ring_units


def robust_assemble(
    summaries: Sequence[PeerSummary],
    domain: tuple[float, float],
    ring_size: int,
    method: RobustMethod,
    trim_fraction: float,
    mom_groups: int,
    interpolation: Literal["linear", "step"] = "linear",
) -> Tuple[PiecewiseCDF, float]:
    """Assemble ``(F̂, n̂)`` from probe replies with a robust combiner.

    The robust combiners operate on Horvitz–Thompson weights, so assembly
    is always the mixture family (the interpolated reconstruction has no
    per-reply weight to harden — its pollution defense is the density
    trim, which composes with this path by running first).

    Raises ``ValueError`` on zero surviving evidence; callers map that to
    their zero-evidence degraded estimate exactly as the trusting path
    does.
    """
    if method == "trimmed":
        weights, kept = trimmed_ht_weights(summaries, trim_fraction)
        cdf = assemble_cdf(summaries, weights, domain, interpolation)
        return cdf, trimmed_total_items(summaries, kept, ring_size)
    if method == "winsorized":
        clamped = winsorize_summaries(summaries, trim_fraction)
        weights = ht_weights(clamped)
        cdf = assemble_cdf(clamped, weights, domain, interpolation)
        return cdf, estimate_total_items(clamped, ring_size)
    if method == "median-of-means":
        cdf, ring_units = median_of_means_cdf(
            summaries, domain, mom_groups, interpolation
        )
        return cdf, float(ring_size) * ring_units
    raise ValueError(f"unknown robust method {method!r}")


def validate_robust_method(method: Optional[str]) -> Optional[RobustMethod]:
    """Validate an estimator's ``robust`` field (``None`` = trusting)."""
    if method is None:
        return None
    if method not in ("trimmed", "winsorized", "median-of-means"):
        raise ValueError(
            f"unknown robust method {method!r}; "
            "known: 'trimmed', 'winsorized', 'median-of-means'"
        )
    return method  # type: ignore[return-value]
