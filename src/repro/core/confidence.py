"""Bootstrap confidence bands for the estimated global CDF.

A point estimate of ``F`` is often not enough: a load balancer deciding
whether to migrate peers, or a query router choosing an execution plan,
wants to know how much to trust it.  Because the probe design is iid
(uniform ring positions), the nonparametric bootstrap applies directly:
resample the probe replies with replacement, rebuild the reconstruction
for each replicate, and take pointwise quantiles.  The band is computed
entirely client-side from evidence already collected — zero extra network
cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Literal, Optional, Sequence

import numpy as np
from numpy.typing import NDArray

from repro.core.cdf_sampling import (
    assemble_cdf_interpolated,
    collect_probes,
    estimate_peer_count,
)
from repro.core.estimate import DensityEstimate
from repro.core.synopsis import PeerSummary
from repro.ring.network import RingNetwork

__all__ = ["ConfidenceBand", "bootstrap_confidence_band", "estimate_with_confidence"]


@dataclass(frozen=True)
class ConfidenceBand:
    """A pointwise bootstrap band around an estimated CDF."""

    grid: NDArray[np.float64]
    lower: NDArray[np.float64]
    upper: NDArray[np.float64]
    level: float
    replicates: int

    def __post_init__(self) -> None:
        if not (self.grid.shape == self.lower.shape == self.upper.shape):
            raise ValueError("grid/lower/upper must have equal shape")
        if np.any(self.lower > self.upper + 1e-12):
            raise ValueError("band is inverted (lower > upper)")

    @property
    def mean_width(self) -> float:
        """Average vertical width of the band — a scalar uncertainty
        summary (shrinks as ``O(1/sqrt(probes))``)."""
        return float(np.mean(self.upper - self.lower))

    def coverage_of(self, truth: Callable[[NDArray[np.float64]], NDArray[np.float64]]) -> float:
        """Fraction of grid points where a reference CDF lies in the band."""
        values = np.asarray(truth(self.grid), dtype=float)
        inside = (values >= self.lower - 1e-12) & (values <= self.upper + 1e-12)
        return float(np.mean(inside))

    def contains_point(self, x: float, f_value: float) -> bool:
        """Is ``(x, F(x)=f_value)`` inside the band (grid-interpolated)?"""
        lower = float(np.interp(x, self.grid, self.lower))
        upper = float(np.interp(x, self.grid, self.upper))
        return lower - 1e-12 <= f_value <= upper + 1e-12


def bootstrap_confidence_band(
    summaries: Sequence[PeerSummary],
    domain: tuple[float, float],
    level: float = 0.9,
    replicates: int = 200,
    grid_points: int = 128,
    rng: Optional[np.random.Generator] = None,
    gap_interpolation: Literal["linear", "log"] = "linear",
) -> ConfidenceBand:
    """Pointwise bootstrap band from probe evidence.

    ``summaries`` must be the raw probe replies *with* repetitions — the
    bootstrap resamples the probe design, so collapsing duplicates first
    would understate the variance.
    """
    if not summaries:
        raise ValueError("need at least one probe summary")
    if not 0.0 < level < 1.0:
        raise ValueError(f"level must be in (0, 1), got {level}")
    if replicates < 2:
        raise ValueError(f"need at least 2 bootstrap replicates, got {replicates}")
    # Seeded default: bands quoted without an explicit generator must
    # still be identical run to run.
    generator = rng if rng is not None else np.random.default_rng(0)
    low, high = domain
    grid = np.linspace(low, high, grid_points)

    curves = np.empty((replicates, grid_points))
    count = len(summaries)
    for rep in range(replicates):
        picks = generator.integers(0, count, size=count)
        resampled = [summaries[int(i)] for i in picks]
        try:
            reconstruction = assemble_cdf_interpolated(
                resampled, domain, gap_interpolation
            )
        except ValueError:
            # A replicate of all-empty peers carries no curve; resample.
            curves[rep] = curves[rep - 1] if rep else 0.0
            continue
        curves[rep] = np.asarray(reconstruction.cdf(grid), dtype=float)

    alpha = (1.0 - level) / 2.0
    lower = np.quantile(curves, alpha, axis=0)
    upper = np.quantile(curves, 1.0 - alpha, axis=0)
    # A CDF band can be tightened for free with the trivial bounds.
    lower = np.clip(np.maximum.accumulate(lower), 0.0, 1.0)
    upper = np.clip(np.maximum.accumulate(upper), 0.0, 1.0)
    return ConfidenceBand(
        grid=grid, lower=lower, upper=upper, level=level, replicates=replicates
    )


def estimate_with_confidence(
    network: RingNetwork,
    probes: int = 64,
    synopsis_buckets: int = 8,
    level: float = 0.9,
    replicates: int = 200,
    rng: Optional[np.random.Generator] = None,
) -> tuple[DensityEstimate, ConfidenceBand]:
    """One probing pass that yields both the estimate and its band.

    Probes once (same cost as a plain estimate) and reuses the replies for
    both the point reconstruction and the bootstrap.
    """
    generator = rng if rng is not None else network.rng
    before = network.stats.snapshot()
    results = collect_probes(network, probes, synopsis_buckets, rng=generator)
    summaries = [r.summary for r in results]
    reconstruction = assemble_cdf_interpolated(summaries, network.domain)
    cost = before.delta(network.stats.snapshot())
    estimate = DensityEstimate(
        cdf=reconstruction.cdf,
        domain=network.domain,
        n_items=reconstruction.total_items,
        n_peers=estimate_peer_count(summaries, network.space.size),
        probes=len(summaries),
        cost=cost,
        method="distribution-free+band",
    )
    band = bootstrap_confidence_band(
        summaries,
        network.domain,
        level=level,
        replicates=replicates,
        rng=generator,
    )
    return estimate, band
